#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "io/fault_store.hpp"
#include "io/file_store.hpp"
#include "util/error.hpp"
#include "util/temp_dir.hpp"
#include "vm/assembler.hpp"
#include "vm/kernels.hpp"
#include "vm/runtime.hpp"

namespace clio::vm {
namespace {

using util::ExecutionError;

// open(name, read) + read one chunk into a fresh buffer, return bytes read
// WITHOUT closing (the handle stays live in the engine across calls).
const char* const kFaultProbeSource = R"(
.method read_chunk 2 2
  ldarg 0
  ldc 0
  syscall file_open
  stloc 0
  ldarg 1
  syscall buf_new
  stloc 1
  ldloc 0
  ldloc 1
  ldarg 1
  syscall file_read
  ret
.end

.method write_chunk 2 2
  ldarg 0
  ldc 1
  syscall file_open
  stloc 0
  ldloc 0
  ldarg 1
  ldarg 1
  syscall buf_len
  syscall file_write
  ret
.end

.method close_handle 1 0
  ldarg 0
  syscall file_close
  ret
.end
)";

class RuntimeFaultTest : public ::testing::Test {
 protected:
  RuntimeFaultTest() {
    auto real = std::make_unique<io::RealFileStore>(dir_.path());
    auto faulty = std::make_unique<io::FaultStore>(std::move(real));
    fault_store_ = faulty.get();
    fault_store_->arm(false);
    fs_ = std::make_unique<io::ManagedFileSystem>(std::move(faulty),
                                                  io::ManagedFsOptions{});
  }

  ExecutionEngine make_engine() {
    EngineOptions options;
    options.jit.compile_ns_per_byte = 0;
    return ExecutionEngine(assemble(kFaultProbeSource), options,
                           fs_.get());
  }

  void seed_file(const std::string& name, std::size_t bytes) {
    std::vector<std::byte> data(bytes);
    for (std::size_t i = 0; i < bytes; ++i) {
      data[i] = static_cast<std::byte>(i & 0xff);
    }
    auto file = fs_->open(name, io::OpenMode::kTruncate);
    file.write(data);
    file.close();
  }

  util::TempDir dir_;
  io::FaultStore* fault_store_ = nullptr;
  std::unique_ptr<io::ManagedFileSystem> fs_;
};

TEST_F(RuntimeFaultTest, BackingReadFaultSurfacesAsTypedExecutionError) {
  seed_file("victim.bin", 16 * 1024);
  fs_->drop_caches();  // force the VM read to touch the faulting store
  io::FaultPlan plan;
  plan.seed = 0x5eed;
  plan.fail_prob[static_cast<std::size_t>(io::FaultOp::kRead)] = 1.0;
  plan.fail_prob[static_cast<std::size_t>(io::FaultOp::kReadv)] = 1.0;
  fault_store_->set_plan(plan);
  fault_store_->arm(true);

  auto engine = make_engine();
  try {
    engine.call("read_chunk", {kernels::make_string("victim.bin"),
                               Value::from_int(4096)});
    FAIL() << "faulted read must not succeed with a cold cache";
  } catch (const ExecutionError& e) {
    // The managed boundary contract: a storage EIO reaches bytecode as a
    // typed ExecutionError naming the syscall — never a raw IoError, and
    // never std::terminate.
    EXPECT_NE(std::string(e.what()).find("file_read"), std::string::npos)
        << e.what();
  }
  fault_store_->arm(false);
}

TEST_F(RuntimeFaultTest, SeededFaultStormNeverEscapesTheTypedContract) {
  seed_file("storm.bin", 64 * 1024);
  io::FaultPlan plan;
  plan.seed = 0xfeed;
  plan.fail_prob[static_cast<std::size_t>(io::FaultOp::kRead)] = 0.4;
  plan.fail_prob[static_cast<std::size_t>(io::FaultOp::kReadv)] = 0.4;
  plan.short_read_prob = 0.2;
  fault_store_->set_plan(plan);

  auto engine = make_engine();
  int ok = 0;
  int faulted = 0;
  for (int i = 0; i < 60; ++i) {
    fs_->drop_caches();
    fault_store_->arm(true);
    try {
      const auto got =
          engine.call("read_chunk", {kernels::make_string("storm.bin"),
                                     Value::from_int(4096)})
              .as_int();
      EXPECT_EQ(got, 4096);
      ++ok;
    } catch (const ExecutionError&) {
      ++faulted;  // the ONLY acceptable failure type
    }
    fault_store_->arm(false);
  }
  // With p(fault) = 0.4 per backing read over 60 seeded trials, both
  // outcomes occur; all-of-one-kind means the injection or the wrapping
  // broke.
  EXPECT_GT(ok, 0);
  EXPECT_GT(faulted, 0);
}

TEST_F(RuntimeFaultTest, FileWriteReportsTheCountTheStreamAccepted) {
  auto engine = make_engine();
  const std::vector<std::byte> payload(10000, std::byte{0xab});
  const auto wrote =
      engine
          .call("write_chunk", {kernels::make_string("out.bin"),
                                kernels::make_buffer(payload)})
          .as_int();
  // The syscall echoes ManagedFile::write's accepted count, not its own
  // request argument.
  EXPECT_EQ(wrote, 10000);
  engine.call("close_handle", {Value::from_int(0)});
  auto file = fs_->open("out.bin", io::OpenMode::kRead);
  EXPECT_EQ(file.size(), 10000u);
  file.close();
}

TEST_F(RuntimeFaultTest, TornWriteAtFlushSurfacesThroughFileClose) {
  io::FaultPlan plan;
  plan.seed = 0xbad;
  plan.torn_write_prob = 1.0;
  fault_store_->set_plan(plan);

  auto engine = make_engine();
  const std::vector<std::byte> payload(12 * 1024, std::byte{0x77});
  // The write itself lands in the buffer pool and reports full acceptance…
  const auto wrote =
      engine
          .call("write_chunk", {kernels::make_string("torn.bin"),
                                kernels::make_buffer(payload)})
          .as_int();
  EXPECT_EQ(wrote, 12 * 1024);
  // …but close() flushes through the faulting store: the torn write must
  // surface as a typed ExecutionError naming file_close, not crash, not
  // silently drop bytes.
  fault_store_->arm(true);
  try {
    engine.call("close_handle", {Value::from_int(0)});
    FAIL() << "torn flush must surface";
  } catch (const ExecutionError& e) {
    EXPECT_NE(std::string(e.what()).find("file_close"), std::string::npos)
        << e.what();
  }
  fault_store_->arm(false);
}

}  // namespace
}  // namespace clio::vm
