// Asserts the acceptance criterion of the managed I/O fast path: a
// file_read of a 64 KiB byte buffer performs ZERO per-byte Value boxing —
// heap allocations during the call are O(1), not O(bytes).  The old
// array-based path allocated a staging vector and boxed 65536 elements;
// this test pins the new path by counting every global operator new in the
// process while the syscall runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "io/file_store.hpp"
#include "util/temp_dir.hpp"
#include "vm/assembler.hpp"
#include "vm/kernels.hpp"
#include "vm/runtime.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

// Replace the global allocator with counting shims.  All variants funnel
// through malloc/free so new/delete stay matched no matter which overload
// the standard library picks.  GCC's -Wmismatched-new-delete can't see
// that the replaced operator new is malloc-backed, so quiet it here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   ((n + static_cast<std::size_t>(align) - 1) /
                                    static_cast<std::size_t>(align)) *
                                       static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return ::operator new(n, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace clio::vm {
namespace {

// args: 0 handle, 1 buffer, 2 count -> bytes read
const char* const kReadOnceSource = R"(
.method read_once 3 0
  ldarg 0
  ldarg 1
  ldarg 2
  syscall file_read
  ret
.end

.method open_file 1 0
  ldarg 0
  ldc 0
  syscall file_open
  ret
.end

.method seek_zero 1 0
  ldarg 0
  ldc 0
  syscall file_seek
  ret
.end
)";

TEST(RuntimeAllocTest, BufferFileReadMakesNoPerByteAllocations) {
  constexpr std::size_t kBytes = 64 * 1024;
  util::TempDir dir;
  io::ManagedFsOptions fs_options;
  fs_options.prefetch_on_seek = false;
  io::ManagedFileSystem fs(std::make_unique<io::RealFileStore>(dir.path()),
                           fs_options);
  {
    std::vector<std::byte> data(kBytes, std::byte{0x5a});
    auto file = fs.open("big.bin", io::OpenMode::kTruncate);
    file.write(data);
    file.close();
  }

  EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  ExecutionEngine engine(assemble(kReadOnceSource), options, &fs);
  const auto handle =
      engine.call("open_file", {kernels::make_string("big.bin")});
  const auto buffer = kernels::make_buffer(
      std::vector<std::byte>(kBytes));  // reused across reads
  const std::vector<Value> read_args{handle, buffer,
                                     Value::from_int(kBytes)};
  const std::vector<Value> seek_args{handle};
  const auto read_idx = engine.method_index("read_once");
  const auto seek_idx = engine.method_index("seek_zero");

  // Warm everything once: JIT compile, pool pages, interpreter frames.
  engine.call_index(seek_idx, seek_args);
  ASSERT_EQ(engine.call_index(read_idx, read_args).as_int(),
            static_cast<std::int64_t>(kBytes));
  engine.call_index(seek_idx, seek_args);

  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  const auto got = engine.call_index(read_idx, read_args).as_int();
  const std::uint64_t after = g_news.load(std::memory_order_relaxed);
  ASSERT_EQ(got, static_cast<std::int64_t>(kBytes));

  const std::uint64_t allocs = after - before;
  // Frame setup (locals/stack vectors) plus a few pool-side incidentals
  // are fine; anything proportional to the 65536 bytes moved is not.  The
  // old boxing path fails this bound by three orders of magnitude.
  EXPECT_LT(allocs, 64u) << "file_read allocated " << allocs
                         << " times for a " << kBytes << "-byte read";
}

}  // namespace
}  // namespace clio::vm
