// Regression tests for the shared decode/branch-boundary contract
// (vm/decode.hpp): the verifier and the JIT resolve branch targets through
// the same helper, so a malformed branch fails with the same *typed*
// VerifyError from both — historically the JIT resolved targets with
// unordered_map::at() and a branch to a non-boundary offset escaped as raw
// std::out_of_range.
#include "vm/decode.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "util/error.hpp"
#include "vm/jit.hpp"
#include "vm/module.hpp"
#include "vm/verifier.hpp"

namespace clio::vm {
namespace {

using util::VerifyError;

void emit(std::vector<std::uint8_t>& code, Op op) {
  code.push_back(static_cast<std::uint8_t>(op));
}

void emit_i64(std::vector<std::uint8_t>& code, Op op, std::int64_t imm) {
  emit(code, op);
  for (int i = 0; i < 8; ++i) {
    code.push_back(static_cast<std::uint8_t>(
        (static_cast<std::uint64_t>(imm) >> (8 * i)) & 0xff));
  }
}

void emit_u32(std::vector<std::uint8_t>& code, Op op, std::uint32_t v) {
  emit(code, op);
  for (int i = 0; i < 4; ++i) {
    code.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

/// ldc 0 (9 bytes, offsets 0..8) / br <target> / ret — `target` can be
/// aimed into the middle of the ldc or past the end of the stream.
Module module_with_branch_to(std::uint32_t target) {
  Module module;
  MethodDef method;
  method.name = "bad_branch";
  std::vector<std::uint8_t> code;
  emit_i64(code, Op::kLdcI8, 0);
  emit_u32(code, Op::kBr, target);
  emit(code, Op::kRet);
  method.code = std::move(code);
  module.add_method(std::move(method));
  return module;
}

TEST(DecodeTest, StreamMapsEveryInstructionBoundary) {
  Module module = module_with_branch_to(14);  // 14 = the ret: valid
  const DecodedStream stream = decode_stream(module.method(0));
  ASSERT_EQ(stream.insns.size(), 3u);
  EXPECT_EQ(stream.insns[0].op, Op::kLdcI8);
  EXPECT_EQ(stream.insns[1].op, Op::kBr);
  EXPECT_EQ(stream.insns[2].op, Op::kRet);
  EXPECT_EQ(branch_target(stream, 14, module.method(0)), 2u);
  EXPECT_EQ(branch_target(stream, 0, module.method(0)), 0u);
}

TEST(DecodeTest, BranchIntoInstructionMiddleIsTypedInVerifierAndJit) {
  // Offset 5 lands inside the ldc's immediate.
  Module module = module_with_branch_to(5);
  EXPECT_THROW((void)verify_method(module, module.method(0)), VerifyError);
  Jit jit(module, JitOptions{});
  try {
    jit.get(0);
    FAIL() << "JIT accepted a branch into an instruction";
  } catch (const VerifyError& e) {
    EXPECT_NE(std::string(e.what()).find("non-boundary"), std::string::npos)
        << e.what();
  }
  // Anything else (std::out_of_range in particular) fails the test frame.
}

TEST(DecodeTest, BranchToEndOfCodeIsTypedNotOutOfRange) {
  // Offset 15 == code size: one past the last instruction.  This is the
  // exact shape that used to escape as unordered_map::at's out_of_range.
  Module module = module_with_branch_to(15);
  EXPECT_THROW((void)verify_method(module, module.method(0)), VerifyError);
  Jit jit(module, JitOptions{});
  EXPECT_THROW(jit.get(0), VerifyError);
}

TEST(DecodeTest, TruncatedOperandIsTyped) {
  Module module;
  MethodDef method;
  method.name = "truncated";
  std::vector<std::uint8_t> code;
  emit(code, Op::kLdcI8);  // promises 8 operand bytes...
  code.push_back(0x01);    // ...delivers one
  method.code = std::move(code);
  module.add_method(std::move(method));
  EXPECT_THROW(decode_stream(module.method(0)), VerifyError);
  Jit jit(module, JitOptions{});
  EXPECT_THROW(jit.get(0), VerifyError);
}

}  // namespace
}  // namespace clio::vm
