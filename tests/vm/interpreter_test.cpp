#include "vm/interpreter.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "vm/assembler.hpp"
#include "vm/runtime.hpp"

namespace clio::vm {
namespace {

std::int64_t run_int(const std::string& source, const std::string& method,
                     std::vector<Value> args = {}) {
  EngineOptions options;
  options.jit.compile_ns_per_byte = 0;  // keep tests fast
  ExecutionEngine engine(assemble(source), options);
  return engine.call(method, std::move(args)).as_int();
}

TEST(Interpreter, ArithmeticBasics) {
  EXPECT_EQ(run_int(".method f 0 0\nldc 2\nldc 3\nadd\nret\n.end\n", "f"), 5);
  EXPECT_EQ(run_int(".method f 0 0\nldc 7\nldc 3\nsub\nret\n.end\n", "f"), 4);
  EXPECT_EQ(run_int(".method f 0 0\nldc 6\nldc 7\nmul\nret\n.end\n", "f"),
            42);
  EXPECT_EQ(run_int(".method f 0 0\nldc 17\nldc 5\ndiv\nret\n.end\n", "f"),
            3);
  EXPECT_EQ(run_int(".method f 0 0\nldc 17\nldc 5\nrem\nret\n.end\n", "f"),
            2);
  EXPECT_EQ(run_int(".method f 0 0\nldc 9\nneg\nret\n.end\n", "f"), -9);
}

TEST(Interpreter, BitwiseAndShifts) {
  EXPECT_EQ(run_int(".method f 0 0\nldc 12\nldc 10\nand\nret\n.end\n", "f"),
            8);
  EXPECT_EQ(run_int(".method f 0 0\nldc 12\nldc 10\nor\nret\n.end\n", "f"),
            14);
  EXPECT_EQ(run_int(".method f 0 0\nldc 12\nldc 10\nxor\nret\n.end\n", "f"),
            6);
  EXPECT_EQ(run_int(".method f 0 0\nldc 3\nldc 4\nshl\nret\n.end\n", "f"),
            48);
  EXPECT_EQ(run_int(".method f 0 0\nldc 48\nldc 4\nshr\nret\n.end\n", "f"),
            3);
}

TEST(Interpreter, DivisionByZeroTraps) {
  EXPECT_THROW(run_int(".method f 0 0\nldc 1\nldc 0\ndiv\nret\n.end\n", "f"),
               util::ExecutionError);
  EXPECT_THROW(run_int(".method f 0 0\nldc 1\nldc 0\nrem\nret\n.end\n", "f"),
               util::ExecutionError);
}

TEST(Interpreter, FloatArithmeticAndConversion) {
  EXPECT_EQ(run_int(".method f 0 0\nldcf 1.5\nldcf 2.25\naddf\nconvf2i\nret\n"
                    ".end\n",
                    "f"),
            4);  // 3.75 rounds to 4
  EXPECT_EQ(
      run_int(".method f 0 0\nldc 7\nconvi2f\nldcf 2.0\ndivf\nconvf2i\nret\n"
              ".end\n",
              "f"),
      4);  // 3.5 rounds
}

TEST(Interpreter, Comparisons) {
  EXPECT_EQ(run_int(".method f 0 0\nldc 3\nldc 3\ncmpeq\nret\n.end\n", "f"),
            1);
  EXPECT_EQ(run_int(".method f 0 0\nldc 3\nldc 4\ncmplt\nret\n.end\n", "f"),
            1);
  EXPECT_EQ(run_int(".method f 0 0\nldc 4\nldc 3\ncmple\nret\n.end\n", "f"),
            0);
}

TEST(Interpreter, ArgsAndLocals) {
  const auto source = R"(
.method addmul 3 1
  ldarg 0
  ldarg 1
  add
  stloc 0
  ldloc 0
  ldarg 2
  mul
  ret
.end
)";
  EXPECT_EQ(run_int(source, "addmul",
                    {Value::from_int(2), Value::from_int(3),
                     Value::from_int(4)}),
            20);
}

TEST(Interpreter, LoopComputesTriangularNumber) {
  const auto source = R"(
.method tri 1 2
  ldc 0
  stloc 0
  ldc 1
  stloc 1
top:
  ldloc 1
  ldarg 0
  cmpgt
  brtrue done
  ldloc 0
  ldloc 1
  add
  stloc 0
  ldloc 1
  ldc 1
  add
  stloc 1
  br top
done:
  ldloc 0
  ret
.end
)";
  EXPECT_EQ(run_int(source, "tri", {Value::from_int(100)}), 5050);
}

TEST(Interpreter, RecursiveFibonacci) {
  const auto source = R"(
.method fib 1 0
  ldarg 0
  ldc 2
  cmplt
  brfalse recurse
  ldarg 0
  ret
recurse:
  ldarg 0
  ldc 1
  sub
  call fib
  ldarg 0
  ldc 2
  sub
  call fib
  add
  ret
.end
)";
  EXPECT_EQ(run_int(source, "fib", {Value::from_int(15)}), 610);
}

TEST(Interpreter, MutualCallsAcrossMethods) {
  const auto source = R"(
.method main 0 0
  ldc 21
  call double_it
  ret
.end
.method double_it 1 0
  ldarg 0
  ldc 2
  mul
  ret
.end
)";
  EXPECT_EQ(run_int(source, "main"), 42);
}

TEST(Interpreter, ArraysStoreAndLoad) {
  const auto source = R"(
.method f 0 1
  ldc 8
  newarr
  stloc 0
  ldloc 0
  ldc 3
  ldc 99
  stelem
  ldloc 0
  ldc 3
  ldelem
  ldloc 0
  arrlen
  add
  ret
.end
)";
  EXPECT_EQ(run_int(source, "f"), 107);  // 99 + 8
}

TEST(Interpreter, ArrayBoundsTrap) {
  const auto source = R"(
.method f 0 1
  ldc 4
  newarr
  stloc 0
  ldloc 0
  ldc 4
  ldelem
  ret
.end
)";
  EXPECT_THROW(run_int(source, "f"), util::ExecutionError);
}

TEST(Interpreter, DynamicTypeErrorsTrap) {
  // add on a float value traps (depth-verified, dynamically typed).
  EXPECT_THROW(
      run_int(".method f 0 0\nldcf 1.0\nldc 1\nadd\nret\n.end\n", "f"),
      util::ExecutionError);
}

TEST(Interpreter, InfiniteRecursionOverflowsCallStack) {
  const auto source = R"(
.method boom 0 0
  call boom
  ret
.end
)";
  EXPECT_THROW(run_int(source, "boom"), util::ExecutionError);
}

TEST(Interpreter, StrLenSyscall) {
  const auto source = R"(
.method f 0 0
  ldstr "twelve chars"
  syscall str_len
  ret
.end
)";
  EXPECT_EQ(run_int(source, "f"), 12);
}

TEST(Interpreter, RandSyscallIsBoundedAndSeeded) {
  const auto source = R"(
.method f 1 0
  ldarg 0
  syscall rand_seed
  pop
  ldc 100
  syscall rand_next
  ret
.end
)";
  EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  ExecutionEngine engine(assemble(source), options);
  const auto a = engine.call("f", {Value::from_int(5)}).as_int();
  const auto b = engine.call("f", {Value::from_int(5)}).as_int();
  EXPECT_EQ(a, b);  // same seed, same draw
  EXPECT_GE(a, 0);
  EXPECT_LT(a, 100);
}

TEST(Interpreter, InstructionCountAdvances) {
  EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  ExecutionEngine engine(
      assemble(".method f 0 0\nldc 1\nldc 2\nadd\nret\n.end\n"), options);
  engine.call("f");
  EXPECT_EQ(engine.instructions_executed(), 4u);
}

TEST(Interpreter, ArgCountMismatchTraps) {
  EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  ExecutionEngine engine(
      assemble(".method f 1 0\nldarg 0\nret\n.end\n"), options);
  EXPECT_THROW(engine.call("f"), util::ExecutionError);
}

}  // namespace
}  // namespace clio::vm
