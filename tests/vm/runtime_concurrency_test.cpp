// Concurrent callers on one ExecutionEngine: the engine serializes
// execution behind its mutex (the paper's single-threaded engine
// granularity), so N threads hammering call_index — with JIT flushes
// interleaved — must produce N correct, uncorrupted results.  Runs under
// TSan in CI (the vm ctest label is part of the TSan label set).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "io/file_store.hpp"
#include "util/temp_dir.hpp"
#include "vm/assembler.hpp"
#include "vm/kernels.hpp"
#include "vm/runtime.hpp"

namespace clio::vm {
namespace {

// args: 0 handle, 1 buffer, 2 count -> sum of first `count` buffer bytes
const char* const kSumSource = R"(
.method seek_read_sum 3 3
  ; locals: 0 i, 1 acc, 2 got
  ldarg 0
  ldc 0
  syscall file_seek
  pop
  ldarg 0
  ldarg 1
  ldarg 2
  syscall file_read
  stloc 2
  ldc 0
  stloc 0
  ldc 0
  stloc 1
loop:
  ldloc 0
  ldloc 2
  cmpge
  brtrue done
  ldloc 1
  ldarg 1
  ldloc 0
  ldelem
  add
  stloc 1
  ldloc 0
  ldc 1
  add
  stloc 0
  br loop
done:
  ldloc 1
  ret
.end

.method open_file 1 0
  ldarg 0
  ldc 0
  syscall file_open
  ret
.end
)";

TEST(RuntimeConcurrencyTest, ParallelCallersGetCorrectResults) {
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 150;
  EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  ExecutionEngine engine(assemble(kernels::kSpinSource), options);
  const auto idx = engine.method_index("spin_sum");

  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::vector<Value> args{Value::from_int(100 + t)};
      const std::int64_t n = 100 + t;
      const std::int64_t expect = n * (n - 1) / 2;
      for (int i = 0; i < kCallsPerThread; ++i) {
        if (engine.call_index(idx, args).as_int() != expect) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
        // Interleave cache flushes so compiles race calls: the flush and
        // the recompile must both happen under the engine mutex.
        if (i % 37 == 0) engine.flush_jit_cache();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GE(engine.jit_stats().compilations, 1u);
}

TEST(RuntimeConcurrencyTest, ParallelFileSyscallsShareHandleTableSafely) {
  constexpr std::size_t kBytes = 4096;
  util::TempDir dir;
  io::ManagedFileSystem fs(std::make_unique<io::RealFileStore>(dir.path()),
                           io::ManagedFsOptions{});
  std::int64_t expect = 0;
  {
    std::vector<std::byte> data(kBytes);
    for (std::size_t i = 0; i < kBytes; ++i) {
      data[i] = static_cast<std::byte>(i % 251);
      expect += static_cast<std::int64_t>(i % 251);
    }
    auto file = fs.open("shared.bin", io::OpenMode::kTruncate);
    file.write(data);
    file.close();
  }

  EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  ExecutionEngine engine(assemble(kSumSource), options, &fs);
  const auto handle =
      engine.call("open_file", {kernels::make_string("shared.bin")});
  const auto idx = engine.method_index("seek_read_sum");

  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      // Each thread owns its buffer; the handle (and its seek position)
      // is shared, which is exactly why seek+read must be one serialized
      // VM call rather than two racing ones.
      const std::vector<Value> args{
          handle, kernels::make_buffer(std::vector<std::byte>(kBytes)),
          Value::from_int(static_cast<std::int64_t>(kBytes))};
      for (int i = 0; i < 50; ++i) {
        if (engine.call_index(idx, args).as_int() != expect) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace clio::vm
