#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/error.hpp"
#include "vm/assembler.hpp"
#include "vm/runtime.hpp"

namespace clio::vm {
namespace {

using util::ExecutionError;

const char* const kArithSource = R"(
.method div_ab 2 0
  ldarg 0
  ldarg 1
  div
  ret
.end

.method rem_ab 2 0
  ldarg 0
  ldarg 1
  rem
  ret
.end

.method f2i 1 0
  ldarg 0
  convf2i
  ret
.end

.method i2f_roundtrip 1 0
  ldarg 0
  convi2f
  convf2i
  ret
.end

.method recurse 1 0
  ldarg 0
  brfalse base
  ldarg 0
  ldc 1
  sub
  call recurse
  ret
base:
  ldc 0
  ret
.end
)";

ExecutionEngine make_engine(std::size_t max_depth = 256) {
  EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  options.max_call_depth = max_depth;
  return ExecutionEngine(assemble(kArithSource), options);
}

TEST(EdgeSemanticsTest, DivisionAndRemainderByZeroTrap) {
  auto engine = make_engine();
  EXPECT_EQ(engine.call("div_ab", {Value::from_int(7), Value::from_int(2)})
                .as_int(),
            3);
  EXPECT_THROW(
      engine.call("div_ab", {Value::from_int(7), Value::from_int(0)}),
      ExecutionError);
  EXPECT_THROW(
      engine.call("rem_ab", {Value::from_int(7), Value::from_int(0)}),
      ExecutionError);
}

TEST(EdgeSemanticsTest, Int64MinDividedByMinusOneTraps) {
  // INT64_MIN / -1 overflows i64 (and is UB in C++); managed semantics
  // trap, mirroring ECMA-335 System.OverflowException.
  auto engine = make_engine();
  const auto min = std::numeric_limits<std::int64_t>::min();
  EXPECT_THROW(
      engine.call("div_ab", {Value::from_int(min), Value::from_int(-1)}),
      ExecutionError);
  EXPECT_THROW(
      engine.call("rem_ab", {Value::from_int(min), Value::from_int(-1)}),
      ExecutionError);
  // One step inside the range is fine.
  EXPECT_EQ(engine.call("div_ab", {Value::from_int(min + 1),
                                   Value::from_int(-1)})
                .as_int(),
            std::numeric_limits<std::int64_t>::max());
}

TEST(EdgeSemanticsTest, FloatToIntConversionCorners) {
  auto engine = make_engine();
  const auto conv = [&](double f) {
    return engine.call("f2i", {Value::from_float(f)}).as_int();
  };
  EXPECT_EQ(conv(1.5), 2);  // llround: to nearest
  EXPECT_EQ(conv(-2.5), -3);
  // -2^63 is exactly representable and in range...
  EXPECT_EQ(conv(-9223372036854775808.0),
            std::numeric_limits<std::int64_t>::min());
  // ...but +2^63 is the first value OUT of range (INT64_MAX is not a
  // double), as are infinities and NaN.
  EXPECT_THROW(conv(9223372036854775808.0), ExecutionError);
  EXPECT_THROW(conv(std::numeric_limits<double>::infinity()),
               ExecutionError);
  EXPECT_THROW(conv(-std::numeric_limits<double>::infinity()),
               ExecutionError);
  EXPECT_THROW(conv(std::numeric_limits<double>::quiet_NaN()),
               ExecutionError);
}

TEST(EdgeSemanticsTest, IntFloatRoundTripIsLossyPastDoublePrecision) {
  auto engine = make_engine();
  const auto rt = [&](std::int64_t v) {
    return engine.call("i2f_roundtrip", {Value::from_int(v)}).as_int();
  };
  EXPECT_EQ(rt(0), 0);
  EXPECT_EQ(rt(-12345), -12345);
  // 2^53 round-trips exactly; 2^53 + 1 is not a double and lands on a
  // neighbour — managed conv does not pretend otherwise.
  const std::int64_t exact = 1LL << 53;
  EXPECT_EQ(rt(exact), exact);
  EXPECT_NE(rt(exact + 1), exact + 1);
}

TEST(EdgeSemanticsTest, CallDepthOverflowsAtExactBoundary) {
  // recurse(n) occupies n + 1 frames.  With max_call_depth = 8, 8 frames
  // (n = 7) must succeed and 9 frames (n = 8) must trap — the off-by-one
  // either way is a real engine bug.
  auto engine = make_engine(/*max_depth=*/8);
  EXPECT_EQ(engine.call("recurse", {Value::from_int(7)}).as_int(), 0);
  EXPECT_THROW(engine.call("recurse", {Value::from_int(8)}),
               ExecutionError);
  // The failed call must not corrupt the engine: the boundary case still
  // works afterwards.
  EXPECT_EQ(engine.call("recurse", {Value::from_int(7)}).as_int(), 0);
}

}  // namespace
}  // namespace clio::vm
