#include "vm/verifier.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "vm/assembler.hpp"

namespace clio::vm {
namespace {

Module assemble_one(const char* body) {
  return assemble(std::string(".method f 0 2\n") + body + "\n.end\n");
}

TEST(Verifier, AcceptsStraightLineCode) {
  auto module = assemble_one("ldc 1\nldc 2\nadd\nret");
  EXPECT_EQ(verify_method(module, module.method(0)), 2u);
}

TEST(Verifier, ComputesMaxStack) {
  auto module = assemble_one("ldc 1\nldc 2\nldc 3\nadd\nadd\nret");
  EXPECT_EQ(verify_method(module, module.method(0)), 3u);
}

TEST(Verifier, RejectsStackUnderflow) {
  auto module = assemble_one("add\nret");
  EXPECT_THROW(static_cast<void>(verify_method(module, module.method(0))),
               util::VerifyError);
}

TEST(Verifier, RejectsResidualStackAtRet) {
  auto module = assemble_one("ldc 1\nldc 2\nret");
  EXPECT_THROW(static_cast<void>(verify_method(module, module.method(0))),
               util::VerifyError);
}

TEST(Verifier, RejectsFallingOffTheEnd) {
  auto module = assemble_one("ldc 1\npop");
  EXPECT_THROW(static_cast<void>(verify_method(module, module.method(0))),
               util::VerifyError);
}

TEST(Verifier, RejectsEmptyBody) {
  Module module;
  MethodDef m;
  m.name = "empty";
  module.add_method(std::move(m));
  EXPECT_THROW(static_cast<void>(verify_method(module, module.method(0))),
               util::VerifyError);
}

TEST(Verifier, RejectsInconsistentJoinDepth) {
  // One path pushes an extra value before the join.
  auto module = assemble_one(R"(
  ldc 1
  brtrue extra
  ldc 7
  br join
extra:
  ldc 7
  ldc 8
join:
  ret)");
  EXPECT_THROW(static_cast<void>(verify_method(module, module.method(0))),
               util::VerifyError);
}

TEST(Verifier, AcceptsConsistentDiamond) {
  auto module = assemble_one(R"(
  ldc 1
  brtrue left
  ldc 10
  br join
left:
  ldc 20
join:
  ret)");
  EXPECT_NO_THROW(static_cast<void>(verify_method(module, module.method(0))));
}

TEST(Verifier, RejectsLocalIndexOutOfRange) {
  auto module = assemble_one("ldloc 5\nret");  // only 2 locals
  EXPECT_THROW(static_cast<void>(verify_method(module, module.method(0))),
               util::VerifyError);
}

TEST(Verifier, RejectsArgIndexOutOfRange) {
  auto module = assemble_one("ldarg 0\nret");  // zero args
  EXPECT_THROW(static_cast<void>(verify_method(module, module.method(0))),
               util::VerifyError);
}

TEST(Verifier, RejectsBranchIntoOperandBytes) {
  // Hand-craft: br to offset 1 (inside the br's own operand).
  Module module;
  MethodDef m;
  m.name = "evil";
  m.code = {static_cast<std::uint8_t>(Op::kBr), 1, 0, 0, 0,
            static_cast<std::uint8_t>(Op::kRet)};
  module.add_method(std::move(m));
  EXPECT_THROW(static_cast<void>(verify_method(module, module.method(0))),
               util::VerifyError);
}

TEST(Verifier, RejectsTruncatedOperand) {
  Module module;
  MethodDef m;
  m.name = "cut";
  m.code = {static_cast<std::uint8_t>(Op::kLdcI8), 1, 2};  // needs 8 bytes
  module.add_method(std::move(m));
  EXPECT_THROW(static_cast<void>(verify_method(module, module.method(0))),
               util::VerifyError);
}

TEST(Verifier, RejectsUnknownOpcode) {
  Module module;
  MethodDef m;
  m.name = "junk";
  m.code = {0xee};
  module.add_method(std::move(m));
  EXPECT_THROW(static_cast<void>(verify_method(module, module.method(0))),
               util::VerifyError);
}

TEST(Verifier, RejectsCallArityUnderflow) {
  auto source = R"(
.method main 0 0
  call callee
  ret
.end
.method callee 2 0
  ldarg 0
  ret
.end
)";
  auto module = assemble(source);
  EXPECT_THROW(static_cast<void>(verify_method(module, module.method(0))),
               util::VerifyError);
}

TEST(Verifier, VerifyModuleStampsMaxStack) {
  auto module = assemble(R"(
.method a 0 0
  ldc 1
  ldc 2
  ldc 3
  add
  add
  ret
.end
.method b 0 0
  ldc 1
  ret
.end
)");
  verify_module(module);
  EXPECT_EQ(module.method(0).max_stack, 3u);
  EXPECT_EQ(module.method(1).max_stack, 1u);
}

TEST(Verifier, LoopsVerifyCleanly) {
  auto module = assemble(R"(
.method sum 1 2
  ldc 0
  stloc 0
  ldc 0
  stloc 1
top:
  ldloc 1
  ldarg 0
  cmpge
  brtrue done
  ldloc 0
  ldloc 1
  add
  stloc 0
  ldloc 1
  ldc 1
  add
  stloc 1
  br top
done:
  ldloc 0
  ret
.end
)");
  EXPECT_NO_THROW(verify_module(module));
}

}  // namespace
}  // namespace clio::vm
