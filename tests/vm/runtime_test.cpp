#include "vm/runtime.hpp"

#include <gtest/gtest.h>

#include "io/file_store.hpp"
#include "util/error.hpp"
#include "util/temp_dir.hpp"
#include "vm/assembler.hpp"

namespace clio::vm {
namespace {

/// Managed program: create a file, write the bytes 0..n-1, close, reopen,
/// sum the bytes back.  Exercises the whole syscall bridge end to end.
const char* kFileRoundTrip = R"(
.method write_then_sum 1 4
  ; locals: 0 handle, 1 buffer, 2 index, 3 acc
  ldstr "vmdata.bin"
  ldc 1
  syscall file_open
  stloc 0
  ldarg 0
  newarr
  stloc 1
  ; fill buffer with 0..n-1
  ldc 0
  stloc 2
fill:
  ldloc 2
  ldarg 0
  cmpge
  brtrue filled
  ldloc 1
  ldloc 2
  ldloc 2
  stelem
  ldloc 2
  ldc 1
  add
  stloc 2
  br fill
filled:
  ldloc 0
  ldloc 1
  ldarg 0
  syscall file_write
  pop
  ldloc 0
  syscall file_close
  pop
  ; reopen for read
  ldstr "vmdata.bin"
  ldc 0
  syscall file_open
  stloc 0
  ldloc 0
  ldloc 1
  ldarg 0
  syscall file_read
  pop
  ldloc 0
  syscall file_close
  pop
  ; sum the buffer
  ldc 0
  stloc 3
  ldc 0
  stloc 2
sum:
  ldloc 2
  ldarg 0
  cmpge
  brtrue done
  ldloc 3
  ldloc 1
  ldloc 2
  ldelem
  add
  stloc 3
  ldloc 2
  ldc 1
  add
  stloc 2
  br sum
done:
  ldloc 3
  ret
.end
)";

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}) {}

  ExecutionEngine make_engine(const char* source) {
    EngineOptions options;
    options.jit.compile_ns_per_byte = 0;
    return ExecutionEngine(assemble(source), options, &fs_);
  }

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
};

TEST_F(RuntimeTest, ManagedFileRoundTrip) {
  auto engine = make_engine(kFileRoundTrip);
  const auto result =
      engine.call("write_then_sum", {Value::from_int(100)}).as_int();
  EXPECT_EQ(result, 4950);  // sum 0..99
  EXPECT_TRUE(fs_.exists("vmdata.bin"));
}

TEST_F(RuntimeTest, ManagedIoIsTimedByTheIoStack) {
  auto engine = make_engine(kFileRoundTrip);
  engine.call("write_then_sum", {Value::from_int(64)});
  const auto& stats = fs_.stats();
  EXPECT_EQ(stats.op_stats(io::IoOp::kOpen).count(), 2u);
  EXPECT_EQ(stats.op_stats(io::IoOp::kClose).count(), 2u);
  EXPECT_EQ(stats.op_stats(io::IoOp::kWrite).count(), 1u);
  EXPECT_EQ(stats.op_stats(io::IoOp::kRead).count(), 1u);
}

TEST_F(RuntimeTest, FileSeekAndSizeSyscalls) {
  const char* source = R"(
.method f 0 1
  ldstr "seek.bin"
  ldc 1
  syscall file_open
  stloc 0
  ldloc 0
  ldc 16
  newarr
  ldc 16
  syscall file_write
  pop
  ldloc 0
  ldc 4
  syscall file_seek
  pop
  ldloc 0
  syscall file_size
  ldloc 0
  syscall file_close
  pop
  ret
.end
)";
  auto engine = make_engine(source);
  EXPECT_EQ(engine.call("f").as_int(), 16);
}

TEST_F(RuntimeTest, FileSyscallsWithoutFsTrap) {
  EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  ExecutionEngine engine(assemble(R"(
.method f 0 0
  ldstr "x"
  ldc 0
  syscall file_open
  ret
.end
)"),
                         options, nullptr);
  EXPECT_THROW(engine.call("f"), util::ExecutionError);
}

TEST_F(RuntimeTest, BadHandleTraps) {
  const char* source = R"(
.method f 0 0
  ldc 42
  syscall file_close
  ret
.end
)";
  auto engine = make_engine(source);
  EXPECT_THROW(engine.call("f"), util::ExecutionError);
}

TEST_F(RuntimeTest, HandleSlotsAreRecycled) {
  const char* source = R"(
.method f 0 1
  ldstr "a.bin"
  ldc 1
  syscall file_open
  stloc 0
  ldloc 0
  syscall file_close
  pop
  ldstr "b.bin"
  ldc 1
  syscall file_open
  ret
.end
)";
  auto engine = make_engine(source);
  // The reopened handle reuses slot 0.
  EXPECT_EQ(engine.call("f").as_int(), 0);
}

TEST_F(RuntimeTest, CallByIndexMatchesByName) {
  auto engine = make_engine(".method f 0 0\nldc 9\nret\n.end\n");
  const auto idx = engine.method_index("f");
  std::vector<Value> no_args;
  EXPECT_EQ(engine.call_index(idx, no_args).as_int(), 9);
  EXPECT_EQ(engine.call("f").as_int(), 9);
}

TEST_F(RuntimeTest, UnknownMethodThrows) {
  auto engine = make_engine(".method f 0 0\nldc 1\nret\n.end\n");
  EXPECT_THROW(engine.call("missing"), util::ConfigError);
}

}  // namespace
}  // namespace clio::vm
