#include "vm/assembler.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "vm/verifier.hpp"

namespace clio::vm {
namespace {

TEST(Assembler, AssemblesMinimalMethod) {
  const auto module = assemble(R"(
.method answer 0 0
  ldc 42
  ret
.end
)");
  EXPECT_EQ(module.num_methods(), 1u);
  const auto& m = module.method(0);
  EXPECT_EQ(m.name, "answer");
  EXPECT_EQ(m.num_args, 0);
  EXPECT_EQ(m.num_locals, 0);
  ASSERT_EQ(m.code.size(), 10u);  // ldc(9) + ret(1)
  EXPECT_EQ(static_cast<Op>(m.code[0]), Op::kLdcI8);
  EXPECT_EQ(static_cast<Op>(m.code[9]), Op::kRet);
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
  const auto module = assemble(R"(
; leading comment
.method f 0 0   ; trailing comment

  ldc 1  ; push one
  ret
.end
)");
  EXPECT_EQ(module.num_methods(), 1u);
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  auto module = assemble(R"(
.method loop_to_ten 0 1
  ldc 0
  stloc 0
top:
  ldloc 0
  ldc 10
  cmpge
  brtrue done
  ldloc 0
  ldc 1
  add
  stloc 0
  br top
done:
  ldloc 0
  ret
.end
)");
  EXPECT_NO_THROW(verify_module(module));
}

TEST(Assembler, CallResolvesForwardReference) {
  auto module = assemble(R"(
.method main 0 0
  ldc 5
  call helper
  ret
.end
.method helper 1 0
  ldarg 0
  ldc 2
  mul
  ret
.end
)");
  EXPECT_EQ(module.num_methods(), 2u);
  EXPECT_NO_THROW(verify_module(module));
}

TEST(Assembler, LdstrInternsStrings) {
  const auto module = assemble(R"(
.method f 0 0
  ldstr "hello.txt"
  pop
  ldstr "hello.txt"
  pop
  ldstr "other"
  pop
  ldc 0
  ret
.end
)");
  EXPECT_EQ(module.num_strings(), 2u);
  EXPECT_EQ(module.string_at(0), "hello.txt");
  EXPECT_EQ(module.string_at(1), "other");
}

TEST(Assembler, SyscallByNameAndById) {
  const auto by_name = assemble(R"(
.method f 0 0
  syscall clock_ns
  ret
.end
)");
  const auto by_id = assemble(R"(
.method f 0 0
  syscall 1
  ret
.end
)");
  EXPECT_EQ(by_name.method(0).code, by_id.method(0).code);
}

TEST(Assembler, FloatImmediates) {
  auto module = assemble(R"(
.method f 0 0
  ldcf 3.25
  ldcf -0.5
  addf
  convf2i
  ret
.end
)");
  EXPECT_NO_THROW(verify_module(module));
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble(".method f 0 0\n ldc 1\n ret\n"),
               util::ParseError);  // missing .end
  EXPECT_THROW(assemble("ldc 1\n"), util::ParseError);  // outside method
  EXPECT_THROW(assemble(".method f 0 0\n frobnicate\n ret\n.end\n"),
               util::ParseError);  // unknown mnemonic
  EXPECT_THROW(assemble(".method f 0 0\n br nowhere\n ret\n.end\n"),
               util::ParseError);  // undefined label
  EXPECT_THROW(assemble(".method f 0 0\n ldc\n ret\n.end\n"),
               util::ParseError);  // missing operand
  EXPECT_THROW(assemble(".method f 0 0\n ldc twelve\n ret\n.end\n"),
               util::ParseError);  // bad integer
  EXPECT_THROW(assemble(".method f 0 0\n ldstr naked\n ret\n.end\n"),
               util::ParseError);  // unquoted string
  EXPECT_THROW(
      assemble(".method f 0 0\n ldc 1\n ret\n.end\n.method f 0 0\n ldc 1\n "
               "ret\n.end\n"),
      util::ConfigError);  // duplicate method name
  EXPECT_THROW(assemble(".method f 0 0\n ldc 0\n call missing\n ret\n.end\n"),
               util::ConfigError);  // unresolved call
}

TEST(Assembler, DuplicateLabelRejected) {
  EXPECT_THROW(assemble(R"(
.method f 0 0
x:
x:
  ldc 1
  ret
.end
)"),
               util::ParseError);
}

}  // namespace
}  // namespace clio::vm
