#include "vm/kernels.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/dmine/candidate_count.hpp"
#include "apps/pgrep/bitap.hpp"
#include "io/file_store.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"
#include "vm/assembler.hpp"
#include "vm/runtime.hpp"

namespace clio::vm {
namespace {

class KernelsTest : public ::testing::Test {
 protected:
  KernelsTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}) {}

  ExecutionEngine make_engine(const char* source) {
    EngineOptions options;
    options.jit.compile_ns_per_byte = 0;
    return ExecutionEngine(assemble(source), options, &fs_);
  }

  void write_file(const std::string& name, std::span<const std::byte> data) {
    auto file = fs_.open(name, io::OpenMode::kTruncate);
    file.write(data);
    file.close();
  }

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
};

TEST_F(KernelsTest, SpinSumMatchesClosedForm) {
  auto engine = make_engine(kernels::kSpinSource);
  EXPECT_EQ(engine.call("spin_sum", {Value::from_int(1000)}).as_int(),
            1000 * 999 / 2);
  EXPECT_EQ(engine.call("spin_sum", {Value::from_int(0)}).as_int(), 0);
}

TEST_F(KernelsTest, BitapKernelMatchesNativeScanner) {
  // Pseudo-random text with the pattern planted at known spots, including
  // one straddling the 4096-byte chunk boundary.
  const std::string pattern = "needle";
  util::Rng rng(42);
  std::string text(16000, 'x');
  for (auto& ch : text) {
    ch = static_cast<char>('a' + rng.uniform_u64(4));
  }
  const std::size_t plant[] = {10, 4093, 8000, 15990};
  for (const std::size_t at : plant) {
    text.replace(at, pattern.size(), pattern);
  }
  write_file("corpus.txt",
             std::span(reinterpret_cast<const std::byte*>(text.data()),
                       text.size()));

  // Native side: whole-text oracle AND the chunked stream scanner.
  apps::pgrep::Bitap matcher(pattern, 0);
  const auto whole = matcher.find(text);
  apps::pgrep::BitapStreamScanner scanner(matcher);
  auto native_file = fs_.open("corpus.txt", io::OpenMode::kRead);
  std::vector<std::byte> chunk(4096);
  while (true) {
    const std::size_t got = native_file.read(chunk);
    if (got == 0) break;
    scanner.feed(std::string_view(
        reinterpret_cast<const char*>(chunk.data()), got));
  }
  native_file.close();
  EXPECT_EQ(scanner.matches(), whole.size());
  EXPECT_GE(whole.size(), 4u);  // every planted copy found

  // Managed side: the VM kernel over the same file and chunk size.
  auto engine = make_engine(kernels::kBitapSource);
  const auto vm_count =
      engine
          .call("bitap_file",
                {kernels::make_string("corpus.txt"),
                 kernels::bitap_masks(pattern), kernels::bitap_accept(pattern),
                 Value::from_int(4096)})
          .as_int();
  EXPECT_EQ(static_cast<std::uint64_t>(vm_count), scanner.matches());
}

TEST_F(KernelsTest, DmineKernelMatchesNativeCounter) {
  using apps::dmine::kFixedRecordBytes;
  // 600 random baskets of 3..10 items over 32 item ids; 8 candidate pairs.
  util::Rng rng(7);
  std::vector<std::vector<std::uint8_t>> baskets;
  for (int b = 0; b < 600; ++b) {
    std::vector<std::uint8_t> basket;
    const auto n = 3 + rng.uniform_u64(8);
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto item = static_cast<std::uint8_t>(rng.uniform_u64(32));
      bool dup = false;
      for (const auto existing : basket) dup = dup || existing == item;
      if (!dup) basket.push_back(item);
    }
    baskets.push_back(std::move(basket));
  }
  std::vector<std::vector<std::uint8_t>> candidates;
  for (std::uint8_t c = 0; c < 8; ++c) {
    candidates.push_back({c, static_cast<std::uint8_t>(c + 9)});
  }
  const std::size_t k = 2;

  const auto records = apps::dmine::encode_fixed_records(baskets);
  const auto packed = apps::dmine::pack_candidates(candidates, k);
  write_file("baskets.dat", records);

  // Native side: stream the file in 1024-byte chunks (multiple of 16).
  std::uint64_t native_total = 0;
  auto file = fs_.open("baskets.dat", io::OpenMode::kRead);
  std::vector<std::byte> chunk(1024);
  while (true) {
    const std::size_t got = file.read(chunk);
    if (got == 0) break;
    ASSERT_EQ(got % kFixedRecordBytes, 0u);
    native_total += apps::dmine::count_support(
        std::span(chunk.data(), got), packed, k);
  }
  file.close();
  // In-memory oracle agrees with the streamed count.
  EXPECT_EQ(native_total, apps::dmine::count_support(records, packed, k));
  EXPECT_GT(native_total, 0u);

  // Managed side: same file, same candidates, same chunking.
  auto engine = make_engine(kernels::kDmineSource);
  const auto vm_total =
      engine
          .call("dmine_count",
                {kernels::make_string("baskets.dat"),
                 kernels::make_buffer(packed),
                 Value::from_int(static_cast<std::int64_t>(k)),
                 Value::from_int(1024)})
          .as_int();
  EXPECT_EQ(static_cast<std::uint64_t>(vm_total), native_total);
}

}  // namespace
}  // namespace clio::vm
