#include "vm/jit.hpp"

#include <gtest/gtest.h>

#include "util/stopwatch.hpp"
#include "vm/assembler.hpp"
#include "vm/runtime.hpp"

namespace clio::vm {
namespace {

const char* kFibSource = R"(
.method fib 1 0
  ldarg 0
  ldc 2
  cmplt
  brfalse recurse
  ldarg 0
  ret
recurse:
  ldarg 0
  ldc 1
  sub
  call fib
  ldarg 0
  ldc 2
  sub
  call fib
  add
  ret
.end
)";

TEST(Jit, CompilesOncePerMethodWhenCached) {
  EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  ExecutionEngine engine(assemble(kFibSource), options);
  engine.call("fib", {Value::from_int(10)});
  engine.call("fib", {Value::from_int(10)});
  EXPECT_EQ(engine.jit_stats().compilations, 1u);
  EXPECT_GT(engine.jit_stats().cache_hits, 0u);
}

TEST(Jit, CacheDisabledRecompilesEveryInvocation) {
  EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  options.jit.cache_enabled = false;
  ExecutionEngine engine(
      assemble(".method f 0 0\nldc 1\nret\n.end\n"), options);
  engine.call("f");
  engine.call("f");
  engine.call("f");
  EXPECT_EQ(engine.jit_stats().compilations, 3u);
}

TEST(Jit, FirstCallSlowerThanWarmCalls) {
  // Generous compile cost so the effect dwarfs timer noise — the Table 6
  // first-request mechanism in isolation.
  EngineOptions options;
  options.jit.compile_ns_per_byte = 20000;  // 20 us per bytecode byte
  ExecutionEngine engine(
      assemble(".method f 0 0\nldc 1\nldc 2\nadd\nret\n.end\n"), options);
  util::Stopwatch first;
  engine.call("f");
  const double first_ms = first.elapsed_ms();
  util::Stopwatch warm;
  for (int i = 0; i < 10; ++i) engine.call("f");
  const double warm_ms = warm.elapsed_ms() / 10.0;
  EXPECT_GT(first_ms, warm_ms * 3.0);
}

TEST(Jit, FlushCacheRestoresColdStart) {
  EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  ExecutionEngine engine(
      assemble(".method f 0 0\nldc 1\nret\n.end\n"), options);
  engine.call("f");
  engine.flush_jit_cache();
  engine.call("f");
  EXPECT_EQ(engine.jit_stats().compilations, 2u);
}

TEST(Jit, CompileTimeIsTracked) {
  EngineOptions options;
  options.jit.compile_ns_per_byte = 5000;
  ExecutionEngine engine(
      assemble(".method f 0 0\nldc 1\nret\n.end\n"), options);
  engine.call("f");
  EXPECT_GT(engine.jit_stats().total_compile_ms, 0.0);
}

TEST(Jit, CompilationVerifies) {
  // An unverifiable method only traps when first invoked (lazy, like the
  // CLI); other methods in the module remain callable.
  Module module = assemble(".method good 0 0\nldc 1\nret\n.end\n");
  MethodDef bad;
  bad.name = "bad";
  bad.code = {static_cast<std::uint8_t>(Op::kAdd),
              static_cast<std::uint8_t>(Op::kRet)};
  module.add_method(std::move(bad));
  EngineOptions options;
  options.jit.compile_ns_per_byte = 0;
  ExecutionEngine engine(std::move(module), options);
  EXPECT_EQ(engine.call("good").as_int(), 1);
  EXPECT_THROW(engine.call("bad"), util::VerifyError);
}

TEST(Jit, BranchTargetsBecomeInstructionIndices) {
  Module module = assemble(R"(
.method f 0 0
  ldc 1
  brtrue over
  ldc 0
  ret
over:
  ldc 42
  ret
.end
)");
  Jit jit(module, JitOptions{.compile_ns_per_byte = 0});
  const auto& compiled = jit.get(0);
  // brtrue is insn 1; its target must be insn index 4 ("over": ldc 42).
  EXPECT_EQ(compiled.code[1].op, Op::kBrTrue);
  EXPECT_EQ(compiled.code[1].imm, 4);
}

}  // namespace
}  // namespace clio::vm
