#include "net/load_gen.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "io/file_store.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "util/error.hpp"
#include "util/temp_dir.hpp"

namespace clio::net {
namespace {

class LoadGenTest : public ::testing::Test {
 protected:
  LoadGenTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}) {
    for (const auto& [name, size] :
         {std::pair<std::string, std::size_t>{"a.bin", 4000},
          {"b.bin", 9000}}) {
      auto file = fs_.open(name, io::OpenMode::kTruncate);
      std::vector<std::byte> content(size, std::byte{0x5a});
      file.write(content);
      file.close();
    }
  }

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
};

TEST_F(LoadGenTest, RejectsBadConfig) {
  EXPECT_THROW(LoadGenerator(LoadGenOptions{.connections = 0,
                                            .files = {"a.bin"}}),
               util::ConfigError);
  EXPECT_THROW(LoadGenerator(LoadGenOptions{.files = {}}),
               util::ConfigError);
  EXPECT_THROW(LoadGenerator(LoadGenOptions{.post_fraction = 1.5,
                                            .files = {"a.bin"}}),
               util::ConfigError);
}

TEST_F(LoadGenTest, AccountsEveryRequestAndByte) {
  MiniWebServer server(fs_);
  server.start();
  LoadGenOptions options;
  options.connections = 3;
  options.requests_per_connection = 20;
  options.keep_alive = true;
  options.post_fraction = 0.3;
  options.post_bytes = 512;
  options.seed = 99;
  options.files = {"a.bin", "b.bin"};
  const LoadReport report = LoadGenerator(options).run(server.port());
  server.stop();

  EXPECT_EQ(report.requests_sent, 60u);
  EXPECT_EQ(report.ok, 60u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.latency.count(), 60u);
  EXPECT_GT(report.requests_per_sec(), 0.0);
  EXPECT_GE(report.quantile_ms(0.99), report.quantile_ms(0.5));
  // Byte accounting matches the server's own counters exactly.
  const auto stats = server.stats();
  EXPECT_EQ(report.bytes_received, stats.get_body_bytes_sent);
  EXPECT_EQ(report.bytes_posted, stats.post_body_bytes);
  EXPECT_GT(report.bytes_posted, 0u);
}

TEST_F(LoadGenTest, SameSeedSameRequestMix) {
  // The mix is seed-deterministic: two runs against fresh servers issue
  // the same GET/POST split and fetch the same bytes.
  LoadGenOptions options;
  options.connections = 2;
  options.requests_per_connection = 25;
  options.keep_alive = true;
  options.post_fraction = 0.4;
  options.post_bytes = 128;
  options.seed = 2024;
  options.files = {"a.bin", "b.bin"};
  std::uint64_t received[2];
  std::uint64_t posted[2];
  for (int round = 0; round < 2; ++round) {
    MiniWebServer server(fs_);
    server.start();
    const LoadReport report = LoadGenerator(options).run(server.port());
    server.stop();
    EXPECT_EQ(report.errors, 0u);
    received[round] = report.bytes_received;
    posted[round] = report.bytes_posted;
  }
  EXPECT_EQ(received[0], received[1]);
  EXPECT_EQ(posted[0], posted[1]);
}

TEST_F(LoadGenTest, WithoutKeepAliveEveryRequestReconnects) {
  MiniWebServer server(fs_);
  server.start();
  LoadGenOptions options;
  options.connections = 2;
  options.requests_per_connection = 10;
  options.keep_alive = false;
  options.seed = 5;
  options.files = {"a.bin"};
  const LoadReport report = LoadGenerator(options).run(server.port());
  server.stop();
  EXPECT_EQ(report.ok, 20u);
  EXPECT_EQ(server.stats().accepted, 20u);  // one connection per request
}

TEST_F(LoadGenTest, TimedOutRequestsAreCensoredNotDropped) {
  // A server that accepts and then never answers: every request must time
  // out, and each timeout must land in the latency histogram as a censored
  // sample at (at least) the timeout bound instead of silently vanishing
  // from the tail (survivorship bias).
  TcpListener listener(0);
  std::atomic<bool> stop{false};
  std::thread sink([&] {
    std::vector<Socket> held;
    while (!stop.load()) {
      try {
        Socket s = listener.accept(50);
        if (s.valid()) held.push_back(std::move(s));
      } catch (const std::exception&) {
        break;  // listener closed under us
      }
    }
  });

  LoadGenOptions options;
  options.connections = 2;
  options.requests_per_connection = 2;
  options.keep_alive = false;
  options.files = {"a.bin"};
  options.recv_timeout_ms = 200;
  const LoadReport report = LoadGenerator(options).run(listener.port());
  stop.store(true);
  sink.join();

  EXPECT_EQ(report.ok, 0u);
  EXPECT_EQ(report.errors, 4u);
  EXPECT_EQ(report.failures.timeouts, 4u);
  EXPECT_EQ(report.censored, 4u);
  // The censored samples ARE in the distribution, at >= the timeout bound.
  EXPECT_EQ(report.latency.count(), 4u);
  EXPECT_GE(report.quantile_ms(0.5), 200.0 * 0.9);
}

TEST_F(LoadGenTest, OpenLoopModePacesTheOfferedRate) {
  MiniWebServer server(fs_);
  server.start();
  LoadGenOptions options;
  options.connections = 2;
  options.requests_per_connection = 10;
  options.keep_alive = true;
  options.files = {"a.bin"};
  // 100 req/s across 2 connections: each sends every 20 ms, so the fixed
  // schedule alone stretches the run to ~180 ms even though the server
  // answers in microseconds.
  options.offered_rps = 100.0;
  const LoadReport report = LoadGenerator(options).run(server.port());
  server.stop();

  EXPECT_EQ(report.ok, 20u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_GE(report.elapsed_s, 0.15);
  // Against an unloaded server the scheduled sends are never late, so the
  // measured-from-schedule latency stays far below the pacing interval.
  EXPECT_LT(report.quantile_ms(0.5), 20.0);
}

TEST(FailureBreakdown, TotalsAndMerges) {
  FailureBreakdown a;
  a.timeouts = 2;
  a.disconnects = 3;
  FailureBreakdown b;
  b.connect_refused = 1;
  b.malformed = 4;
  b.http_errors = 5;
  b.other = 6;
  a.merge(b);
  EXPECT_EQ(a.timeouts, 2u);
  EXPECT_EQ(a.connect_refused, 1u);
  EXPECT_EQ(a.disconnects, 3u);
  EXPECT_EQ(a.malformed, 4u);
  EXPECT_EQ(a.http_errors, 5u);
  EXPECT_EQ(a.other, 6u);
  EXPECT_EQ(a.total(), 21u);
}

TEST_F(LoadGenTest, ClassifiesConnectRefused) {
  // Grab an ephemeral port with a listener, then close it: every connect
  // to it is refused, and the report must say so by name.
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  LoadGenOptions options;
  options.connections = 1;
  options.requests_per_connection = 3;
  options.keep_alive = false;
  options.files = {"a.bin"};
  const LoadReport report = LoadGenerator(options).run(dead_port);
  EXPECT_EQ(report.ok, 0u);
  EXPECT_EQ(report.errors, 3u);
  EXPECT_EQ(report.failures.connect_refused, 3u);
  EXPECT_EQ(report.failures.total(), report.errors);
}

TEST_F(LoadGenTest, ClassifiesHttpErrorStatuses) {
  MiniWebServer server(fs_);
  server.start();
  LoadGenOptions options;
  options.connections = 1;
  options.requests_per_connection = 4;
  options.keep_alive = true;
  options.files = {"no-such-file.bin"};  // every GET answers 404
  const LoadReport report = LoadGenerator(options).run(server.port());
  server.stop();
  EXPECT_EQ(report.ok, 0u);
  EXPECT_EQ(report.errors, 4u);
  EXPECT_EQ(report.failures.http_errors, 4u);
  EXPECT_EQ(report.failures.total(), report.errors);
}

TEST_F(LoadGenTest, RenderSummarizesCleanAndFailedRuns) {
  MiniWebServer server(fs_);
  server.start();
  LoadGenOptions options;
  options.connections = 1;
  options.requests_per_connection = 5;
  options.files = {"a.bin"};
  const LoadReport clean = LoadGenerator(options).run(server.port());
  server.stop();

  std::ostringstream clean_out;
  clean.render(clean_out);
  EXPECT_NE(clean_out.str().find("ok=5"), std::string::npos);
  // A clean run does not print the failure breakdown line.
  EXPECT_EQ(clean_out.str().find("failures:"), std::string::npos);

  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  const LoadReport failed = LoadGenerator(options).run(dead_port);
  std::ostringstream failed_out;
  failed.render(failed_out);
  EXPECT_NE(failed_out.str().find("failures:"), std::string::npos);
  EXPECT_NE(failed_out.str().find("connect_refused=5"), std::string::npos);
}

}  // namespace
}  // namespace clio::net
