#include "net/load_gen.hpp"

#include <gtest/gtest.h>

#include "io/file_store.hpp"
#include "net/server.hpp"
#include "util/error.hpp"
#include "util/temp_dir.hpp"

namespace clio::net {
namespace {

class LoadGenTest : public ::testing::Test {
 protected:
  LoadGenTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}) {
    for (const auto& [name, size] :
         {std::pair<std::string, std::size_t>{"a.bin", 4000},
          {"b.bin", 9000}}) {
      auto file = fs_.open(name, io::OpenMode::kTruncate);
      std::vector<std::byte> content(size, std::byte{0x5a});
      file.write(content);
      file.close();
    }
  }

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
};

TEST_F(LoadGenTest, RejectsBadConfig) {
  EXPECT_THROW(LoadGenerator(LoadGenOptions{.connections = 0,
                                            .files = {"a.bin"}}),
               util::ConfigError);
  EXPECT_THROW(LoadGenerator(LoadGenOptions{.files = {}}),
               util::ConfigError);
  EXPECT_THROW(LoadGenerator(LoadGenOptions{.post_fraction = 1.5,
                                            .files = {"a.bin"}}),
               util::ConfigError);
}

TEST_F(LoadGenTest, AccountsEveryRequestAndByte) {
  MiniWebServer server(fs_);
  server.start();
  LoadGenOptions options;
  options.connections = 3;
  options.requests_per_connection = 20;
  options.keep_alive = true;
  options.post_fraction = 0.3;
  options.post_bytes = 512;
  options.seed = 99;
  options.files = {"a.bin", "b.bin"};
  const LoadReport report = LoadGenerator(options).run(server.port());
  server.stop();

  EXPECT_EQ(report.requests_sent, 60u);
  EXPECT_EQ(report.ok, 60u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.latency.count(), 60u);
  EXPECT_GT(report.requests_per_sec(), 0.0);
  EXPECT_GE(report.quantile_ms(0.99), report.quantile_ms(0.5));
  // Byte accounting matches the server's own counters exactly.
  const auto stats = server.stats();
  EXPECT_EQ(report.bytes_received, stats.get_body_bytes_sent);
  EXPECT_EQ(report.bytes_posted, stats.post_body_bytes);
  EXPECT_GT(report.bytes_posted, 0u);
}

TEST_F(LoadGenTest, SameSeedSameRequestMix) {
  // The mix is seed-deterministic: two runs against fresh servers issue
  // the same GET/POST split and fetch the same bytes.
  LoadGenOptions options;
  options.connections = 2;
  options.requests_per_connection = 25;
  options.keep_alive = true;
  options.post_fraction = 0.4;
  options.post_bytes = 128;
  options.seed = 2024;
  options.files = {"a.bin", "b.bin"};
  std::uint64_t received[2];
  std::uint64_t posted[2];
  for (int round = 0; round < 2; ++round) {
    MiniWebServer server(fs_);
    server.start();
    const LoadReport report = LoadGenerator(options).run(server.port());
    server.stop();
    EXPECT_EQ(report.errors, 0u);
    received[round] = report.bytes_received;
    posted[round] = report.bytes_posted;
  }
  EXPECT_EQ(received[0], received[1]);
  EXPECT_EQ(posted[0], posted[1]);
}

TEST_F(LoadGenTest, WithoutKeepAliveEveryRequestReconnects) {
  MiniWebServer server(fs_);
  server.start();
  LoadGenOptions options;
  options.connections = 2;
  options.requests_per_connection = 10;
  options.keep_alive = false;
  options.seed = 5;
  options.files = {"a.bin"};
  const LoadReport report = LoadGenerator(options).run(server.port());
  server.stop();
  EXPECT_EQ(report.ok, 20u);
  EXPECT_EQ(server.stats().accepted, 20u);  // one connection per request
}

}  // namespace
}  // namespace clio::net
