#include "net/fault_channel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>

#include "io/file_store.hpp"
#include "net/client.hpp"
#include "net/http.hpp"
#include "net/load_gen.hpp"
#include "net/server.hpp"
#include "util/error.hpp"
#include "util/temp_dir.hpp"

namespace clio::net {
namespace {

/// In-memory Channel double so injector behaviour is testable without a
/// real peer: records sends, serves a scripted recv payload.
class ScriptedChannel final : public Channel {
 public:
  explicit ScriptedChannel(std::string incoming)
      : incoming_(std::move(incoming)) {}

  void send_all(const void* data, std::size_t n) override {
    sent_.append(static_cast<const char*>(data), n);
  }
  std::size_t recv_some(void* out, std::size_t n) override {
    const std::size_t take = std::min(n, incoming_.size() - cursor_);
    std::memcpy(out, incoming_.data() + cursor_, take);
    cursor_ += take;
    return take;
  }
  void close() override { closed_ = true; }
  [[nodiscard]] bool valid() const override { return !closed_; }

  std::string sent_;
  std::string incoming_;
  std::size_t cursor_ = 0;
  bool closed_ = false;
};

TEST(NetFaultInjector, DisarmedForwardsEverythingUncounted) {
  NetFaultPlan plan;
  plan.recv_fail_prob = 1.0;
  plan.send_fail_prob = 1.0;
  plan.accept_drop_prob = 1.0;
  NetFaultInjector injector(plan);
  injector.arm(false);
  ScriptedChannel inner("hello");
  FaultChannel channel(inner, injector);
  char buf[8];
  EXPECT_EQ(channel.recv_some(buf, sizeof(buf)), 5u);
  channel.send_all("out", 3);
  EXPECT_EQ(inner.sent_, "out");
  EXPECT_FALSE(injector.should_drop_accept());
  EXPECT_EQ(injector.stats().total_faults(), 0u);
  EXPECT_EQ(injector.stats().recv_calls, 0u);
}

TEST(NetFaultInjector, CertainFaultsFire) {
  NetFaultPlan plan;
  plan.recv_fail_prob = 1.0;
  NetFaultInjector injector(plan);
  ScriptedChannel inner("hello");
  FaultChannel channel(inner, injector);
  char buf[8];
  EXPECT_THROW(static_cast<void>(channel.recv_some(buf, sizeof(buf))),
               util::IoError);
  EXPECT_EQ(injector.stats().recv_failures, 1u);

  plan = NetFaultPlan{};
  plan.send_fail_prob = 1.0;
  injector.set_plan(plan);
  EXPECT_THROW(channel.send_all("x", 1), util::IoError);
  EXPECT_TRUE(inner.sent_.empty());  // clean EIO: nothing left the channel

  plan = NetFaultPlan{};
  plan.accept_drop_prob = 1.0;
  injector.set_plan(plan);
  EXPECT_TRUE(injector.should_drop_accept());
}

TEST(NetFaultInjector, RecvDisconnectReportsOrderlyShutdown) {
  NetFaultPlan plan;
  plan.recv_disconnect_prob = 1.0;
  NetFaultInjector injector(plan);
  ScriptedChannel inner("pending bytes");
  FaultChannel channel(inner, injector);
  char buf[8];
  EXPECT_EQ(channel.recv_some(buf, sizeof(buf)), 0u);
  EXPECT_TRUE(inner.closed_);
  EXPECT_EQ(injector.stats().recv_disconnects, 1u);
}

TEST(NetFaultInjector, ShortSendTearsAndCloses) {
  NetFaultPlan plan;
  plan.short_send_prob = 1.0;
  NetFaultInjector injector(plan);
  ScriptedChannel inner("");
  FaultChannel channel(inner, injector);
  const std::string payload(1000, 'z');
  EXPECT_THROW(channel.send_all(payload.data(), payload.size()),
               util::IoError);
  // A strict prefix reached the peer, then the connection broke.
  EXPECT_LT(inner.sent_.size(), payload.size());
  EXPECT_TRUE(inner.closed_);
  EXPECT_EQ(injector.stats().short_sends, 1u);
}

TEST(NetFaultInjector, SameSeedReplaysSameDecisions) {
  NetFaultPlan plan;
  plan.seed = 1234;
  plan.recv_fail_prob = 0.3;
  plan.recv_disconnect_prob = 0.2;
  const auto trace_of = [&] {
    NetFaultInjector injector(plan);
    ScriptedChannel inner(std::string(1, 'x'));
    FaultChannel channel(inner, injector);
    std::string trace;
    for (int i = 0; i < 64; ++i) {
      inner.closed_ = false;
      inner.cursor_ = 0;
      char buf[4];
      try {
        trace.push_back(channel.recv_some(buf, sizeof(buf)) == 0 ? 'd' : '.');
      } catch (const util::IoError&) {
        trace.push_back('f');
      }
    }
    return trace;
  };
  const std::string a = trace_of();
  const std::string b = trace_of();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find('f'), std::string::npos);
  EXPECT_NE(a.find('d'), std::string::npos);
}

TEST(FaultChannelServer, ServerSurvivesAFaultStormAndServesCleanAfter) {
  util::TempDir dir("clio-faultchan");
  io::ManagedFileSystem fs(
      std::make_unique<io::RealFileStore>(dir.path()),
      io::ManagedFsOptions{});
  {
    auto file = fs.open("doc.bin", io::OpenMode::kTruncate);
    std::vector<std::byte> content(8192, std::byte{0x42});
    file.write(content);
    file.close();
  }

  NetFaultPlan plan;
  plan.seed = 77;
  plan.accept_drop_prob = 0.05;
  plan.recv_fail_prob = 0.05;
  plan.recv_disconnect_prob = 0.05;
  plan.send_fail_prob = 0.05;
  plan.short_send_prob = 0.05;
  NetFaultInjector injector(plan);

  ServerOptions options;
  options.worker_threads = 2;
  options.fault_injector = &injector;
  MiniWebServer server(fs, options);
  server.start();

  LoadGenOptions load;
  load.connections = 4;
  load.requests_per_connection = 50;
  load.keep_alive = true;
  load.seed = 77;
  load.files = {"doc.bin"};
  const LoadReport report = LoadGenerator(load).run(server.port());
  // The storm must actually have fired, and some requests still succeed.
  EXPECT_GT(injector.stats().total_faults(), 0u);
  EXPECT_GT(report.ok, 0u);
  EXPECT_GT(report.errors, 0u);

  // Disarmed, the server serves exactly again.
  injector.arm(false);
  HttpClient client(server.port());
  const auto response = client.get("/doc.bin");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body.size(), 8192u);
  server.stop();
}

}  // namespace
}  // namespace clio::net
