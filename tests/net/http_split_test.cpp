// HttpReader against every possible TCP fragmentation: the same wire
// bytes split at every byte boundary, and dripped one byte per recv.
// recv_some returning short counts is not an error path, it is the normal
// case on a real network — the parser must reassemble identically no
// matter where the kernel happened to cut the stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>

#include "net/channel.hpp"
#include "net/http.hpp"
#include "util/error.hpp"

namespace clio::net {
namespace {

/// A Channel that replays a scripted byte stream, never serving bytes
/// across the `split` offset in one recv, and never more than `cap`
/// bytes at a time.  Sends are discarded (these tests only parse).
class ScriptChannel final : public Channel {
 public:
  ScriptChannel(std::string wire, std::size_t split,
                std::size_t cap = static_cast<std::size_t>(-1))
      : wire_(std::move(wire)), split_(split), cap_(cap) {}

  void send_all(const void*, std::size_t) override {}

  std::size_t recv_some(void* out, std::size_t n) override {
    ++recv_calls_;
    if (pos_ >= wire_.size()) return 0;  // orderly shutdown
    std::size_t limit = wire_.size() - pos_;
    if (pos_ < split_) limit = std::min(limit, split_ - pos_);
    const std::size_t take = std::min({n, limit, cap_});
    std::memcpy(out, wire_.data() + pos_, take);
    pos_ += take;
    return take;
  }

  void close() override { pos_ = wire_.size(); }
  [[nodiscard]] bool valid() const override { return true; }
  [[nodiscard]] std::size_t recv_calls() const { return recv_calls_; }

 private:
  std::string wire_;
  std::size_t split_;
  std::size_t cap_;
  std::size_t pos_ = 0;
  std::size_t recv_calls_ = 0;
};

TEST(HttpSplit, GetRequestParsesAcrossEverySplitBoundary) {
  const std::string wire =
      "GET /image.jpg HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    SCOPED_TRACE("split=" + std::to_string(split));
    ScriptChannel channel(wire, split);
    HttpReader reader(channel);
    const auto request = reader.read_request();
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->method, "GET");
    EXPECT_EQ(request->path, "/image.jpg");
    EXPECT_TRUE(request->keep_alive);
    EXPECT_TRUE(request->body.empty());
    EXPECT_FALSE(reader.read_request().has_value());  // then clean close
  }
}

TEST(HttpSplit, PostBodyReassemblesAcrossEverySplitBoundary) {
  // The split sweep covers the start line, each header, the blank line,
  // and every offset inside the body.
  const std::string body = "the quick brown fox";
  const std::string wire = "POST /upload HTTP/1.1\r\nContent-Length: " +
                           std::to_string(body.size()) + "\r\n\r\n" + body;
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    SCOPED_TRACE("split=" + std::to_string(split));
    ScriptChannel channel(wire, split);
    HttpReader reader(channel);
    const auto request = reader.read_request();
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->method, "POST");
    EXPECT_EQ(request->body, body);
  }
}

TEST(HttpSplit, ResponseParsesAcrossEverySplitBoundary) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\nContent-Length: 7\r\nConnection: close\r\n\r\n"
      "payload";
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    SCOPED_TRACE("split=" + std::to_string(split));
    ScriptChannel channel(wire, split);
    HttpReader reader(channel);
    const HttpResponse response = reader.read_response();
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "payload");
    EXPECT_FALSE(response.keep_alive);
  }
}

TEST(HttpSplit, PipelinedPairSurvivesEverySplitBoundary) {
  // The split can land inside message one, exactly between the two, or
  // inside message two — the reader's spill buffer must hand the second
  // request over intact in all three regimes.
  const std::string wire =
      "POST /upload HTTP/1.1\r\nContent-Length: 5\r\n\r\n"
      "12345GET /next.bin HTTP/1.1\r\n\r\n";
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    SCOPED_TRACE("split=" + std::to_string(split));
    ScriptChannel channel(wire, split);
    HttpReader reader(channel);
    const auto first = reader.read_request();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->method, "POST");
    EXPECT_EQ(first->body, "12345");
    const auto second = reader.read_request();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->method, "GET");
    EXPECT_EQ(second->path, "/next.bin");
  }
}

TEST(HttpSplit, OneBytePerRecvIsTheWorstCaseAndStillParses) {
  const std::string body(300, 'z');
  const std::string wire = "POST /upload HTTP/1.0\r\nContent-Length: " +
                           std::to_string(body.size()) + "\r\n\r\n" + body;
  ScriptChannel channel(wire, /*split=*/0, /*cap=*/1);
  HttpReader reader(channel);
  const auto request = reader.read_request();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->body, body);
  // Dripping one byte per call really did exercise one recv per byte.
  EXPECT_GE(channel.recv_calls(), wire.size());
}

TEST(HttpSplit, TruncationAtEverySplitBoundaryStillThrows) {
  // However the stream fragments, a peer that dies before the header
  // terminator is a parse error at every fragmentation, never a hang or
  // a phantom request.
  const std::string wire = "GET /image.jpg HTTP/1.1\r\nConnection: clo";
  for (std::size_t split = 1; split <= wire.size(); ++split) {
    SCOPED_TRACE("split=" + std::to_string(split));
    ScriptChannel channel(wire, split);
    HttpReader reader(channel);
    EXPECT_THROW(static_cast<void>(reader.read_request()),
                 util::ParseError);
  }
}

}  // namespace
}  // namespace clio::net
