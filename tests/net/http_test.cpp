#include "net/http.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "util/error.hpp"

namespace clio::net {
namespace {

/// Runs `server_side` against a connected socket pair via a real listener.
template <typename ServerFn, typename ClientFn>
void with_pair(ServerFn&& server_side, ClientFn&& client_side) {
  TcpListener listener(0);
  std::thread server([&] {
    Socket socket = listener.accept(2000);
    ASSERT_TRUE(socket.valid());
    server_side(socket);
  });
  Socket client = connect_loopback(listener.port());
  client_side(client);
  server.join();
}

TEST(Http, RequestRoundTrip) {
  with_pair(
      [](const Socket& socket) {
        const auto request = read_request(socket);
        ASSERT_TRUE(request.has_value());
        EXPECT_EQ(request->method, "GET");
        EXPECT_EQ(request->path, "/image.jpg");
        EXPECT_EQ(request->file_name(), "image.jpg");
        EXPECT_TRUE(request->body.empty());
        send_response(socket, 200, "payload");
      },
      [](const Socket& socket) {
        HttpRequest request;
        request.method = "GET";
        request.path = "/image.jpg";
        send_request(socket, request);
        const auto response = read_response(socket);
        EXPECT_EQ(response.status, 200);
        EXPECT_EQ(response.body, "payload");
      });
}

TEST(Http, PostBodyRoundTrip) {
  const std::string body(10000, 'B');
  with_pair(
      [&](const Socket& socket) {
        const auto request = read_request(socket);
        ASSERT_TRUE(request.has_value());
        EXPECT_EQ(request->method, "POST");
        EXPECT_EQ(request->body.size(), 10000u);
        EXPECT_EQ(request->body, body);
        send_response(socket, 201, "created");
      },
      [&](const Socket& socket) {
        HttpRequest request;
        request.method = "POST";
        request.path = "/upload";
        request.body = body;
        send_request(socket, request);
        EXPECT_EQ(read_response(socket).status, 201);
      });
}

TEST(Http, BinaryBodySurvives) {
  std::string body;
  for (int i = 0; i < 256; ++i) body.push_back(static_cast<char>(i));
  with_pair(
      [&](const Socket& socket) {
        const auto request = read_request(socket);
        ASSERT_TRUE(request.has_value());
        EXPECT_EQ(request->body, body);
        send_response(socket, 200, request->body);
      },
      [&](const Socket& socket) {
        HttpRequest request;
        request.method = "POST";
        request.path = "/bin";
        request.body = body;
        send_request(socket, request);
        EXPECT_EQ(read_response(socket).body, body);
      });
}

TEST(Http, CleanCloseYieldsNullopt) {
  with_pair(
      [](const Socket& socket) {
        EXPECT_FALSE(read_request(socket).has_value());
      },
      [](Socket& socket) { socket.close(); });
}

TEST(Http, MalformedStartLineThrows) {
  with_pair(
      [](const Socket& socket) {
        EXPECT_THROW(read_request(socket), util::ParseError);
      },
      [](const Socket& socket) {
        const std::string junk = "NONSENSE\r\n\r\n";
        socket.send_all(junk.data(), junk.size());
      });
}

TEST(Http, PathMustBeAbsolute) {
  with_pair(
      [](const Socket& socket) {
        EXPECT_THROW(read_request(socket), util::ParseError);
      },
      [](const Socket& socket) {
        const std::string junk = "GET relative HTTP/1.0\r\n\r\n";
        socket.send_all(junk.data(), junk.size());
      });
}

TEST(Http, ReasonPhrases) {
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(404), "Not Found");
  EXPECT_EQ(reason_phrase(599), "Unknown");
}

TEST(Sockets, ListenerPicksEphemeralPort) {
  TcpListener a(0);
  TcpListener b(0);
  EXPECT_NE(a.port(), 0);
  EXPECT_NE(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

TEST(Sockets, AcceptTimesOutWhenNoClient) {
  TcpListener listener(0);
  Socket socket = listener.accept(10);
  EXPECT_FALSE(socket.valid());
}

}  // namespace
}  // namespace clio::net
