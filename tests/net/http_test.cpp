#include "net/http.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "util/error.hpp"

namespace clio::net {
namespace {

/// Runs `server_side` against a connected socket pair via a real listener.
template <typename ServerFn, typename ClientFn>
void with_pair(ServerFn&& server_side, ClientFn&& client_side) {
  TcpListener listener(0);
  std::thread server([&] {
    Socket socket = listener.accept(2000);
    ASSERT_TRUE(socket.valid());
    server_side(socket);
  });
  Socket client = connect_loopback(listener.port());
  client_side(client);
  server.join();
}

TEST(Http, RequestRoundTrip) {
  with_pair(
      [](Socket& socket) {
        const auto request = read_request(socket);
        ASSERT_TRUE(request.has_value());
        EXPECT_EQ(request->method, "GET");
        EXPECT_EQ(request->path, "/image.jpg");
        EXPECT_EQ(request->file_name(), "image.jpg");
        EXPECT_TRUE(request->body.empty());
        send_response(socket, 200, "payload");
      },
      [](Socket& socket) {
        HttpRequest request;
        request.method = "GET";
        request.path = "/image.jpg";
        send_request(socket, request);
        const auto response = read_response(socket);
        EXPECT_EQ(response.status, 200);
        EXPECT_EQ(response.body, "payload");
      });
}

TEST(Http, PostBodyRoundTrip) {
  const std::string body(10000, 'B');
  with_pair(
      [&](Socket& socket) {
        const auto request = read_request(socket);
        ASSERT_TRUE(request.has_value());
        EXPECT_EQ(request->method, "POST");
        EXPECT_EQ(request->body.size(), 10000u);
        EXPECT_EQ(request->body, body);
        send_response(socket, 201, "created");
      },
      [&](Socket& socket) {
        HttpRequest request;
        request.method = "POST";
        request.path = "/upload";
        request.body = body;
        send_request(socket, request);
        EXPECT_EQ(read_response(socket).status, 201);
      });
}

TEST(Http, BinaryBodySurvives) {
  std::string body;
  for (int i = 0; i < 256; ++i) body.push_back(static_cast<char>(i));
  with_pair(
      [&](Socket& socket) {
        const auto request = read_request(socket);
        ASSERT_TRUE(request.has_value());
        EXPECT_EQ(request->body, body);
        send_response(socket, 200, request->body);
      },
      [&](Socket& socket) {
        HttpRequest request;
        request.method = "POST";
        request.path = "/bin";
        request.body = body;
        send_request(socket, request);
        EXPECT_EQ(read_response(socket).body, body);
      });
}

TEST(Http, CleanCloseYieldsNullopt) {
  with_pair(
      [](Socket& socket) {
        EXPECT_FALSE(read_request(socket).has_value());
      },
      [](Socket& socket) { socket.close(); });
}

TEST(Http, MalformedStartLineThrows) {
  with_pair(
      [](Socket& socket) {
        EXPECT_THROW(static_cast<void>(read_request(socket)),
                     util::ParseError);
      },
      [](Socket& socket) {
        const std::string junk = "NONSENSE\r\n\r\n";
        socket.send_all(junk.data(), junk.size());
      });
}

TEST(Http, PathMustBeAbsolute) {
  with_pair(
      [](Socket& socket) {
        EXPECT_THROW(static_cast<void>(read_request(socket)),
                     util::ParseError);
      },
      [](Socket& socket) {
        const std::string junk = "GET relative HTTP/1.0\r\n\r\n";
        socket.send_all(junk.data(), junk.size());
      });
}

TEST(Http, TruncatedRequestLineThrows) {
  // The peer dies mid start-line: bytes arrived but no header terminator
  // ever will — that is a parse error, not a clean close.
  with_pair(
      [](Socket& socket) {
        EXPECT_THROW(static_cast<void>(read_request(socket)),
                     util::ParseError);
      },
      [](Socket& socket) {
        const std::string partial = "GET /image.j";
        socket.send_all(partial.data(), partial.size());
        socket.close();
      });
}

TEST(Http, TruncatedHeadersThrow) {
  with_pair(
      [](Socket& socket) {
        EXPECT_THROW(static_cast<void>(read_request(socket)),
                     util::ParseError);
      },
      [](Socket& socket) {
        const std::string partial =
            "GET /a HTTP/1.1\r\nContent-Length: 0\r\n";  // missing blank line
        socket.send_all(partial.data(), partial.size());
        socket.close();
      });
}

TEST(Http, OversizedHeadersRejected) {
  // A header block that never terminates must be refused at the cap, not
  // buffered without bound.
  with_pair(
      [](Socket& socket) {
        EXPECT_THROW(static_cast<void>(read_request(socket)),
                     util::ParseError);
      },
      [](Socket& socket) {
        std::string wire = "GET /a HTTP/1.1\r\nX-Padding: ";
        wire.append(kMaxHeaderBytes + 4096, 'x');
        try {
          socket.send_all(wire.data(), wire.size());
        } catch (const util::IoError&) {
          // The server may close on us before the whole flood is written.
        }
      });
}

TEST(Http, MissingContentLengthMeansEmptyBody) {
  with_pair(
      [](Socket& socket) {
        const auto request = read_request(socket);
        ASSERT_TRUE(request.has_value());
        EXPECT_EQ(request->method, "POST");
        EXPECT_TRUE(request->body.empty());
      },
      [](Socket& socket) {
        const std::string wire = "POST /upload HTTP/1.1\r\n\r\n";
        socket.send_all(wire.data(), wire.size());
        socket.close();
      });
}

TEST(Http, ContentLengthLargerThanBodyThrows) {
  // A lying Content-Length promising more bytes than the peer ever sends
  // surfaces as a truncation error once the connection closes.
  with_pair(
      [](Socket& socket) {
        EXPECT_THROW(static_cast<void>(read_request(socket)),
                     util::ParseError);
      },
      [](Socket& socket) {
        const std::string wire =
            "POST /upload HTTP/1.0\r\nContent-Length: 100\r\n\r\nshort";
        socket.send_all(wire.data(), wire.size());
        socket.close();
      });
}

TEST(Http, GarbageContentLengthThrows) {
  with_pair(
      [](Socket& socket) {
        EXPECT_THROW(static_cast<void>(read_request(socket)),
                     util::ParseError);
      },
      [](Socket& socket) {
        const std::string wire =
            "POST /upload HTTP/1.0\r\nContent-Length: 12abc\r\n\r\n";
        socket.send_all(wire.data(), wire.size());
      });
}

TEST(Http, AbsurdContentLengthRejectedBeforeBuffering) {
  with_pair(
      [](Socket& socket) {
        EXPECT_THROW(static_cast<void>(read_request(socket)),
                     util::ParseError);
      },
      [](Socket& socket) {
        const std::string wire = "POST /upload HTTP/1.0\r\nContent-Length: " +
                                 std::to_string(kMaxBodyBytes + 1) +
                                 "\r\n\r\n";
        socket.send_all(wire.data(), wire.size());
      });
}

TEST(Http, ContentLengthSmallerThanSentLeavesPipelinedBytes) {
  // A Content-Length shorter than what was sent is not an error: the
  // surplus is the next pipelined message.  (The pre-keep-alive parser
  // rejected this as "body exceeds Content-Length".)
  with_pair(
      [](Socket& socket) {
        HttpReader reader(socket);
        const auto first = reader.read_request();
        ASSERT_TRUE(first.has_value());
        EXPECT_EQ(first->body, "12345");
        EXPECT_TRUE(reader.has_buffered());
        const auto second = reader.read_request();
        ASSERT_TRUE(second.has_value());
        EXPECT_EQ(second->method, "GET");
        EXPECT_EQ(second->path, "/next");
      },
      [](Socket& socket) {
        const std::string wire =
            "POST /upload HTTP/1.1\r\nContent-Length: 5\r\n\r\n"
            "12345GET /next HTTP/1.1\r\n\r\n";
        socket.send_all(wire.data(), wire.size());
        socket.close();
      });
}

TEST(Http, PipelinedRequestsParseFromOneBuffer) {
  // Both requests land in one TCP segment; the reader must serve the
  // second from its buffer instead of blocking on the socket.
  with_pair(
      [](Socket& socket) {
        HttpReader reader(socket);
        const auto a = reader.read_request();
        ASSERT_TRUE(a.has_value());
        EXPECT_EQ(a->path, "/a.jpg");
        send_response(socket, 200, "A", /*keep_alive=*/true);
        const auto b = reader.read_request();
        ASSERT_TRUE(b.has_value());
        EXPECT_EQ(b->path, "/b.jpg");
        send_response(socket, 200, "B", /*keep_alive=*/false);
      },
      [](Socket& socket) {
        const std::string wire =
            "GET /a.jpg HTTP/1.1\r\n\r\nGET /b.jpg HTTP/1.1\r\n\r\n";
        socket.send_all(wire.data(), wire.size());
        HttpReader reader(socket);
        EXPECT_EQ(reader.read_response().body, "A");
        EXPECT_EQ(reader.read_response().body, "B");
      });
}

TEST(Http, KeepAliveNegotiation) {
  // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
  // Connection header overrides either default.
  const std::vector<std::pair<std::string, bool>> cases = {
      {"GET /a HTTP/1.1\r\n\r\n", true},
      {"GET /a HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET /a HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n", true},
      {"GET /a HTTP/1.0\r\n\r\n", false},
      {"GET /a HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
  };
  for (const auto& [wire, expected] : cases) {
    SCOPED_TRACE(wire);
    with_pair(
        [&](Socket& socket) {
          const auto request = read_request(socket);
          ASSERT_TRUE(request.has_value());
          EXPECT_EQ(request->keep_alive, expected);
        },
        [&](Socket& socket) { socket.send_all(wire.data(), wire.size()); });
  }
}

TEST(Http, ResponseCarriesKeepAliveFlag) {
  with_pair(
      [](Socket& socket) {
        send_response(socket, 200, "first", /*keep_alive=*/true);
        send_response(socket, 200, "last", /*keep_alive=*/false);
      },
      [](Socket& socket) {
        HttpReader reader(socket);
        const auto first = reader.read_response();
        EXPECT_TRUE(first.keep_alive);
        const auto last = reader.read_response();
        EXPECT_FALSE(last.keep_alive);
      });
}

TEST(Http, ReasonPhrases) {
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(404), "Not Found");
  EXPECT_EQ(reason_phrase(503), "Service Unavailable");
  EXPECT_EQ(reason_phrase(599), "Unknown");
}

TEST(Sockets, ListenerPicksEphemeralPort) {
  TcpListener a(0);
  TcpListener b(0);
  EXPECT_NE(a.port(), 0);
  EXPECT_NE(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

TEST(Sockets, AcceptTimesOutWhenNoClient) {
  TcpListener listener(0);
  Socket socket = listener.accept(10);
  EXPECT_FALSE(socket.valid());
}

}  // namespace
}  // namespace clio::net
