// Serving-side resilience: transient storage faults absorbed invisibly by
// the RetryingStore under a live server, exhausted retries degrading to 503
// (never a torn connection), permanent storage errors answering 500,
// /healthz reflecting breaker state, degraded mode with Retry-After,
// per-request deadline budgets, idle keep-alive timeouts and 408s for
// peers stalling mid-request.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "io/fault_store.hpp"
#include "io/file_store.hpp"
#include "io/retrying_store.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/error.hpp"
#include "util/resilience.hpp"
#include "util/temp_dir.hpp"

namespace clio::net {
namespace {

io::RetryPolicy fast_retry_policy() {
  io::RetryPolicy policy;
  policy.backoff.max_retries = 2;
  policy.backoff.base_delay_us = 10;
  policy.backoff.max_delay_us = 100;
  return policy;
}

/// A breaker config that never trips: tests that exercise only the retry
/// path use it so incidental failure streaks cannot flip the server into
/// degraded mode.
util::CircuitBreakerConfig passive_breaker() {
  util::CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1'000'000;
  return cfg;
}

/// The full production decorator chain under one server:
///   RealFileStore <- FaultStore <- RetryingStore <- ManagedFileSystem,
/// with the breaker shared between the RetryingStore and the server.
struct Rig {
  explicit Rig(io::RetryPolicy policy = fast_retry_policy(),
               util::CircuitBreakerConfig breaker_cfg = passive_breaker())
      : breaker(breaker_cfg) {
    auto real = std::make_unique<io::RealFileStore>(dir.path());
    auto faulty = std::make_unique<io::FaultStore>(std::move(real));
    fault = faulty.get();
    auto retrying = std::make_unique<io::RetryingStore>(std::move(faulty),
                                                        policy, &breaker);
    retry = retrying.get();
    fs.emplace(std::move(retrying), io::ManagedFsOptions{});
    retry->bind_stats(&fs->stats());

    content.resize(8192);
    for (std::size_t i = 0; i < content.size(); ++i) {
      content[i] = static_cast<char>('a' + (i * 13) % 26);
    }
    auto file = fs->open("doc.bin", io::OpenMode::kTruncate);
    file.write(std::as_bytes(
        std::span<const char>(content.data(), content.size())));
    file.close();
  }

  util::TempDir dir;
  util::CircuitBreaker breaker;
  io::FaultStore* fault = nullptr;
  io::RetryingStore* retry = nullptr;
  std::optional<io::ManagedFileSystem> fs;
  std::string content;
};

/// Drives the breaker open without touching the store.
void trip_breaker(util::CircuitBreaker& breaker) {
  while (breaker.state() != util::CircuitBreaker::State::kOpen) {
    if (breaker.try_acquire()) static_cast<void>(breaker.record_failure());
  }
}

/// Drains a Connection: close exchange to raw bytes, headers included —
/// the only way to assert on Retry-After.
std::string raw_exchange(std::uint16_t port, const std::string& wire) {
  Socket socket = connect_loopback(port);
  socket.send_all(wire.data(), wire.size());
  std::string out;
  char buf[4096];
  while (true) {
    const std::size_t n = socket.recv_some(buf, sizeof(buf));
    if (n == 0) break;
    out.append(buf, n);
  }
  return out;
}

TEST(ServerResilience, TransientStorageFaultsAbsorbedInvisibly) {
  Rig rig;
  ServerOptions options;
  options.breaker = &rig.breaker;
  MiniWebServer server(*rig.fs, options);
  server.start();
  rig.fs->drop_caches();
  rig.fault->fail_next(io::FaultOp::kRead, 1);
  rig.fault->fail_next(io::FaultOp::kReadv, 1);

  HttpClient client(server.port());
  const auto response = client.get("/doc.bin");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, rig.content);
  EXPECT_GE(rig.retry->stats().absorbed, 1u);
  EXPECT_GE(rig.fs->stats().resilience().retries, 1u);
  EXPECT_EQ(server.stats().degraded_503, 0u);
  server.stop();
}

TEST(ServerResilience, ExhaustedRetriesDegradeTo503NotTeardown) {
  Rig rig;
  ServerOptions options;
  options.breaker = &rig.breaker;
  MiniWebServer server(*rig.fs, options);
  server.start();
  rig.fs->drop_caches();
  rig.fault->fail_next(io::FaultOp::kRead, 1000);
  rig.fault->fail_next(io::FaultOp::kReadv, 1000);

  HttpClient client(server.port(), /*keep_alive=*/true);
  EXPECT_EQ(client.get("/doc.bin").status, 503);
  // The fault storm ends; the SAME connection serves the next request —
  // a storage 503 is an answer, not a connection teardown.
  rig.fault->fail_next(io::FaultOp::kRead, 0);
  rig.fault->fail_next(io::FaultOp::kReadv, 0);
  EXPECT_EQ(client.get("/doc.bin").status, 200);
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.degraded_503, 1u);
  EXPECT_EQ(stats.io_errors, 0u);
  EXPECT_GE(rig.retry->stats().exhausted, 1u);
  server.stop();
}

TEST(ServerResilience, PermanentStorageErrorAnswers500AndLeavesBreakerClosed) {
  Rig rig;
  ServerOptions options;
  options.breaker = &rig.breaker;
  MiniWebServer server(*rig.fs, options);
  server.start();

  io::FaultPlan plan;
  plan.torn_write_prob = 1.0;
  rig.fault->set_plan(plan);
  HttpClient client(server.port(), /*keep_alive=*/true);
  EXPECT_EQ(client.post("/upload", std::string(4096, 'z')).status, 500);
  rig.fault->set_plan(io::FaultPlan{});
  EXPECT_EQ(client.get("/doc.bin").status, 200);
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.request_errors, 1u);
  EXPECT_EQ(stats.io_errors, 0u);
  // Torn writes are definitive answers, not infrastructure sickness.
  EXPECT_EQ(rig.breaker.state(), util::CircuitBreaker::State::kClosed);
  EXPECT_GE(rig.retry->stats().permanent, 1u);
  server.stop();
}

TEST(ServerResilience, HealthzReportsReadyWhileBreakerClosed) {
  Rig rig;
  ServerOptions options;
  options.breaker = &rig.breaker;
  MiniWebServer server(*rig.fs, options);
  server.start();
  HttpClient client(server.port());
  const auto response = client.get("/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("status=ok"), std::string::npos);
  EXPECT_NE(response.body.find("breaker=closed"), std::string::npos);
  server.stop();
}

TEST(ServerResilience, OpenBreakerDegradesHealthzAndFileRequests) {
  util::CircuitBreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.open_cooldown_ms = 60'000;  // stays open for the whole test
  Rig rig(fast_retry_policy(), cfg);
  ServerOptions options;
  options.breaker = &rig.breaker;
  MiniWebServer server(*rig.fs, options);
  server.start();
  trip_breaker(rig.breaker);

  const std::string healthz =
      raw_exchange(server.port(),
                   "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(healthz.find("503"), std::string::npos);
  EXPECT_NE(healthz.find("Retry-After:"), std::string::npos);
  EXPECT_NE(healthz.find("breaker=open"), std::string::npos);

  // File requests short-circuit to 503 without touching storage.
  const std::uint64_t attempts_before = rig.retry->stats().attempts;
  const std::string get =
      raw_exchange(server.port(),
                   "GET /doc.bin HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(get.find("503"), std::string::npos);
  EXPECT_NE(get.find("Retry-After:"), std::string::npos);
  EXPECT_EQ(rig.retry->stats().attempts, attempts_before);
  EXPECT_GE(server.stats().degraded_503, 2u);
  server.stop();
}

TEST(ServerResilience, ServerRecoversOnceBreakerCloses) {
  util::CircuitBreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.open_cooldown_ms = 30;
  cfg.half_open_successes = 1;
  Rig rig(fast_retry_policy(), cfg);
  ServerOptions options;
  options.breaker = &rig.breaker;
  MiniWebServer server(*rig.fs, options);
  server.start();
  trip_breaker(rig.breaker);

  HttpClient client(server.port(), /*keep_alive=*/true);
  EXPECT_EQ(client.get("/doc.bin").status, 503);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // Cooldown elapsed: the next storage call is the half-open probe; the
  // store is healthy, so it succeeds and service resumes.  (Drop the page
  // cache so the GET actually reaches the store — a cache hit would skip
  // the probe and leave the breaker half-open.)
  rig.fs->drop_caches();
  EXPECT_EQ(client.get("/doc.bin").status, 200);
  EXPECT_EQ(client.get("/healthz").status, 200);
  EXPECT_EQ(rig.breaker.state(), util::CircuitBreaker::State::kClosed);
  server.stop();
}

TEST(ServerResilience, RequestDeadlineBoundsStorageRetryLatency) {
  // Backoff so slow the retry budget cannot fit in the request deadline:
  // the loop must give up on the budget, not sleep through it.
  io::RetryPolicy slow;
  slow.backoff.max_retries = 1000;
  slow.backoff.base_delay_us = 20'000;
  slow.backoff.max_delay_us = 20'000;
  Rig rig(slow);
  ServerOptions options;
  options.breaker = &rig.breaker;
  options.request_deadline_ms = 40;
  MiniWebServer server(*rig.fs, options);
  server.start();
  rig.fs->drop_caches();
  rig.fault->fail_next(io::FaultOp::kRead, 100000);
  rig.fault->fail_next(io::FaultOp::kReadv, 100000);

  HttpClient client(server.port());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(client.get("/doc.bin").status, 503);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(2));  // not 1000 * 20ms
  EXPECT_GE(rig.fs->stats().resilience().deadline_expiries, 1u);
  server.stop();
}

TEST(ServerResilience, IdleKeepAliveConnectionClosesCleanly) {
  Rig rig;
  ServerOptions options;
  options.idle_timeout_ms = 100;
  MiniWebServer server(*rig.fs, options);
  server.start();

  Socket socket = connect_loopback(server.port());
  HttpReader reader(socket);
  const std::string wire = "GET /doc.bin HTTP/1.1\r\n\r\n";
  socket.send_all(wire.data(), wire.size());
  EXPECT_EQ(reader.read_response().status, 200);
  // Go idle past the budget: the server closes the connection cleanly (an
  // orderly shutdown, not a reset or a wedged worker).
  char buf[64];
  EXPECT_EQ(socket.recv_some(buf, sizeof(buf)), 0u);
  for (int i = 0; i < 2000 && server.stats().connections < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.timeouts_408, 0u);  // idle aging out is a non-event
  EXPECT_EQ(stats.io_errors, 0u);
  server.stop();
}

TEST(ServerResilience, PeerStallingMidRequestGets408) {
  Rig rig;
  ServerOptions options;
  options.idle_timeout_ms = 100;
  MiniWebServer server(*rig.fs, options);
  server.start();

  Socket socket = connect_loopback(server.port());
  // Half a request, then silence: the worker must free itself with a 408
  // instead of waiting forever on the missing bytes.
  const std::string partial = "GET /doc.bin HTT";
  socket.send_all(partial.data(), partial.size());
  HttpReader reader(socket);
  EXPECT_EQ(reader.read_response().status, 408);
  for (int i = 0; i < 2000 && server.stats().timeouts_408 < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.stats().timeouts_408, 1u);
  EXPECT_EQ(server.stats().requests, 0u);
  server.stop();
}

}  // namespace
}  // namespace clio::net
