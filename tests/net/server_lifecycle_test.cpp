// Lifecycle tests for the worker-pool server: stop() racing in-flight
// responses and idle keep-alive connections, make_cold() racing live
// requests, and queue-full backpressure.  These run under the TSan CI
// label (`net`), so every interleaving they provoke is also a data-race
// probe.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "io/file_store.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/temp_dir.hpp"

namespace clio::net {
namespace {

class ServerLifecycleTest : public ::testing::Test {
 protected:
  ServerLifecycleTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}) {
    auto file = fs_.open("doc.bin", io::OpenMode::kTruncate);
    content_.resize(20000);
    for (std::size_t i = 0; i < content_.size(); ++i) {
      content_[i] = static_cast<char>('a' + (i * 13) % 26);
    }
    file.write(std::as_bytes(
        std::span<const char>(content_.data(), content_.size())));
    file.close();
  }

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
  std::string content_;
};

TEST_F(ServerLifecycleTest, StopDuringInFlightRequestsJoinsCleanly) {
  ServerOptions options;
  options.worker_threads = 4;
  MiniWebServer server(fs_, options);
  server.start();

  std::atomic<bool> halt{false};
  std::atomic<std::uint64_t> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      HttpClient client(server.port(), /*keep_alive=*/true);
      while (!halt.load()) {
        try {
          if (client.get("/doc.bin").status == 200) {
            ok.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::exception&) {
          // stop() tears connections down mid-exchange; that is the test.
        }
      }
    });
  }
  // Let traffic build, then stop mid-flight.  stop() must join the accept
  // loop and every worker even though connections are active and idle
  // keep-alive readers are parked in recv.
  while (ok.load() < 20) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));
  server.stop();
  EXPECT_FALSE(server.running());
  halt.store(true);
  for (auto& t : clients) t.join();
  EXPECT_GT(ok.load(), 0u);

  // The server restarts cleanly after a mid-flight stop.
  server.start();
  HttpClient after(server.port());
  EXPECT_EQ(after.get("/doc.bin").status, 200);
  server.stop();
}

TEST_F(ServerLifecycleTest, StopUnblocksIdleKeepAliveConnection) {
  MiniWebServer server(fs_, ServerOptions{});
  server.start();
  // Park a worker on an idle keep-alive connection: one request completes,
  // then the client goes silent without closing.
  HttpClient client(server.port(), /*keep_alive=*/true);
  ASSERT_EQ(client.get("/doc.bin").status, 200);
  // stop() must not hang on the worker blocked in recv for request #2.
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_F(ServerLifecycleTest, MakeColdRacesLiveRequests) {
  ServerOptions options;
  options.worker_threads = 4;
  MiniWebServer server(fs_, options);
  server.start();

  std::atomic<bool> halt{false};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> wrong{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      HttpClient client(server.port(), /*keep_alive=*/true);
      while (!halt.load()) {
        try {
          const auto response = client.get("/doc.bin");
          if (response.status != 200) continue;
          if (response.body == content_) {
            ok.fetch_add(1, std::memory_order_relaxed);
          } else {
            wrong.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::exception&) {
        }
      }
    });
  }
  // Hammer make_cold() against the live GET stream: the pool must never
  // serve a torn page and the flush/evict must never trip over a worker's
  // pinned pages (this used to rebuild the pool under live PageGuards).
  for (int i = 0; i < 50; ++i) {
    server.make_cold();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  halt.store(true);
  for (auto& t : clients) t.join();
  server.stop();
  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(wrong.load(), 0u);
}

TEST_F(ServerLifecycleTest, QueueFullBackpressureReturns503) {
  ServerOptions options;
  options.worker_threads = 1;
  options.max_pending = 1;
  MiniWebServer server(fs_, options);
  server.start();

  // Occupy the only worker deterministically: complete one keep-alive
  // request (so the worker provably owns this connection), then go silent —
  // the worker is now parked in recv for request #2.
  Socket busy = connect_loopback(server.port());
  HttpReader busy_reader(busy);
  const std::string first = "GET /doc.bin HTTP/1.1\r\n\r\n";
  busy.send_all(first.data(), first.size());
  ASSERT_EQ(busy_reader.read_response().status, 200);

  // Fill the single queue slot with a second pending connection.  The
  // accept loop is one thread, so by the time it accepts a later
  // connection this one is already queued.
  Socket queued = connect_loopback(server.port());
  const std::string q = "GET /doc.bin HTTP/1.1\r\nConnection: close\r\n\r\n";
  queued.send_all(q.data(), q.size());
  for (int i = 0; i < 2000 && server.stats().accepted < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The third connection must be rejected promptly with 503, not parked.
  Socket rejected = connect_loopback(server.port());
  const auto response = read_response(rejected);
  EXPECT_EQ(response.status, 503);
  EXPECT_FALSE(response.keep_alive);
  EXPECT_GE(server.stats().rejected_503, 1u);

  // Release the stalled worker; the queued request is then served.
  const std::string second = "GET /doc.bin HTTP/1.1\r\nConnection: close\r\n\r\n";
  busy.send_all(second.data(), second.size());
  EXPECT_EQ(busy_reader.read_response().status, 200);
  EXPECT_EQ(read_response(queued).status, 200);
  server.stop();
}

TEST_F(ServerLifecycleTest, StopAnswersQueuedBacklogWith503) {
  // A connection sitting in the pending queue when stop() begins used to
  // be silently dropped — the fd was closed without a byte ever sent.
  // The drain must answer it with an explicit 503 instead.
  ServerOptions options;
  options.worker_threads = 1;
  options.max_pending = 4;
  MiniWebServer server(fs_, options);
  server.start();

  // Park the only worker: one completed keep-alive request proves the
  // worker owns this connection, then the client goes silent.
  Socket busy = connect_loopback(server.port());
  HttpReader busy_reader(busy);
  const std::string first = "GET /doc.bin HTTP/1.1\r\n\r\n";
  busy.send_all(first.data(), first.size());
  ASSERT_EQ(busy_reader.read_response().status, 200);

  // Two further connections land in the queue behind the parked worker.
  Socket queued_a = connect_loopback(server.port());
  Socket queued_b = connect_loopback(server.port());
  const std::string q = "GET /doc.bin HTTP/1.1\r\nConnection: close\r\n\r\n";
  queued_a.send_all(q.data(), q.size());
  queued_b.send_all(q.data(), q.size());
  for (int i = 0; i < 2000 && server.stats().accepted < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  server.stop();

  // Every queued connection got a complete, well-formed rejection.
  for (Socket* queued : {&queued_a, &queued_b}) {
    const auto response = read_response(*queued);
    EXPECT_EQ(response.status, 503);
    EXPECT_FALSE(response.keep_alive);
  }
  EXPECT_EQ(server.stats().drained_503, 2u);
  EXPECT_FALSE(server.running());
}

TEST_F(ServerLifecycleTest, RestartResetsStatsAndSnapshotsPreviousRun) {
  // Regression: a restarted server used to carry the previous run's
  // counters, so the second run's stats() double-counted.  start() now
  // zeroes the live counters and stop() snapshots the finished run into
  // last_run_stats().
  MiniWebServer server(fs_, ServerOptions{});
  EXPECT_EQ(server.last_run_stats().requests, 0u);  // nothing ran yet

  server.start();
  HttpClient first(server.port(), /*keep_alive=*/true);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(first.get("/doc.bin").status, 200);
  }
  server.stop();
  const ServerStats run1 = server.stats();
  EXPECT_EQ(run1.requests, 3u);
  EXPECT_EQ(run1.get_body_bytes_sent, 3u * content_.size());
  EXPECT_EQ(server.last_run_stats().requests, 3u);

  server.start();
  // The live counters describe the current run only.
  EXPECT_EQ(server.stats().requests, 0u);
  EXPECT_EQ(server.stats().get_body_bytes_sent, 0u);
  EXPECT_TRUE(server.samples().empty());
  // ...while the previous run stays accounted.
  EXPECT_EQ(server.last_run_stats().requests, 3u);

  HttpClient second(server.port());
  ASSERT_EQ(second.get("/doc.bin").status, 200);
  server.stop();
  EXPECT_EQ(server.stats().requests, 1u);
  EXPECT_EQ(server.stats().get_body_bytes_sent, content_.size());
  EXPECT_EQ(server.last_run_stats().requests, 1u);  // snapshot rolled over

  // The metrics registry is deliberately NOT reset across restarts: its
  // counters are cumulative over the server's lifetime, as a Prometheus
  // scraper expects.
  EXPECT_EQ(server.metrics().snapshot().value("clio_server_requests_total"),
            1.0);  // callback reads the live (reset) counter...
  EXPECT_EQ(server.tracer().traces_started(), 4u);  // ...but traces accrue
}

}  // namespace
}  // namespace clio::net
