// Lifecycle tests for the worker-pool server: stop() racing in-flight
// responses and idle keep-alive connections, make_cold() racing live
// requests, and queue-full backpressure.  These run under the TSan CI
// label (`net`), so every interleaving they provoke is also a data-race
// probe.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>

#include "io/fault_store.hpp"
#include "io/file_store.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/temp_dir.hpp"

namespace clio::net {
namespace {

class ServerLifecycleTest : public ::testing::Test {
 protected:
  ServerLifecycleTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}) {
    auto file = fs_.open("doc.bin", io::OpenMode::kTruncate);
    content_.resize(20000);
    for (std::size_t i = 0; i < content_.size(); ++i) {
      content_[i] = static_cast<char>('a' + (i * 13) % 26);
    }
    file.write(std::as_bytes(
        std::span<const char>(content_.data(), content_.size())));
    file.close();
  }

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
  std::string content_;
};

TEST_F(ServerLifecycleTest, StopDuringInFlightRequestsJoinsCleanly) {
  ServerOptions options;
  options.worker_threads = 4;
  MiniWebServer server(fs_, options);
  server.start();

  std::atomic<bool> halt{false};
  std::atomic<std::uint64_t> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      HttpClient client(server.port(), /*keep_alive=*/true);
      while (!halt.load()) {
        try {
          if (client.get("/doc.bin").status == 200) {
            ok.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::exception&) {
          // stop() tears connections down mid-exchange; that is the test.
        }
      }
    });
  }
  // Let traffic build, then stop mid-flight.  stop() must join the accept
  // loop and every worker even though connections are active and idle
  // keep-alive readers are parked in recv.
  while (ok.load() < 20) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));
  server.stop();
  EXPECT_FALSE(server.running());
  halt.store(true);
  for (auto& t : clients) t.join();
  EXPECT_GT(ok.load(), 0u);

  // The server restarts cleanly after a mid-flight stop.
  server.start();
  HttpClient after(server.port());
  EXPECT_EQ(after.get("/doc.bin").status, 200);
  server.stop();
}

TEST_F(ServerLifecycleTest, StopUnblocksIdleKeepAliveConnection) {
  MiniWebServer server(fs_, ServerOptions{});
  server.start();
  // Park a worker on an idle keep-alive connection: one request completes,
  // then the client goes silent without closing.
  HttpClient client(server.port(), /*keep_alive=*/true);
  ASSERT_EQ(client.get("/doc.bin").status, 200);
  // stop() must not hang on the worker blocked in recv for request #2.
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_F(ServerLifecycleTest, MakeColdRacesLiveRequests) {
  ServerOptions options;
  options.worker_threads = 4;
  MiniWebServer server(fs_, options);
  server.start();

  std::atomic<bool> halt{false};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> wrong{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      HttpClient client(server.port(), /*keep_alive=*/true);
      while (!halt.load()) {
        try {
          const auto response = client.get("/doc.bin");
          if (response.status != 200) continue;
          if (response.body == content_) {
            ok.fetch_add(1, std::memory_order_relaxed);
          } else {
            wrong.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::exception&) {
        }
      }
    });
  }
  // Hammer make_cold() against the live GET stream: the pool must never
  // serve a torn page and the flush/evict must never trip over a worker's
  // pinned pages (this used to rebuild the pool under live PageGuards).
  for (int i = 0; i < 50; ++i) {
    server.make_cold();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  halt.store(true);
  for (auto& t : clients) t.join();
  server.stop();
  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(wrong.load(), 0u);
}

/// Rig for queue choreography: a FaultStore between the real store and the
/// managed stack whose latency injection can park the single worker inside
/// a storage op for a known duration.  doc.bin is served warm (pool-only,
/// no injected latency); slow.bin stays cold so its first GET pays the
/// injected backing-store stall.
struct SlowStoreRig {
  SlowStoreRig() {
    auto real = std::make_unique<io::RealFileStore>(dir.path());
    auto faulty = std::make_unique<io::FaultStore>(std::move(real));
    fault = faulty.get();
    fs.emplace(std::move(faulty), io::ManagedFsOptions{});
    for (const char* name : {"doc.bin", "slow.bin"}) {
      auto file = fs->open(name, io::OpenMode::kTruncate);
      std::string content(8192, '\0');
      for (std::size_t i = 0; i < content.size(); ++i) {
        content[i] = static_cast<char>('a' + (i * 13) % 26);
      }
      file.write(std::as_bytes(
          std::span<const char>(content.data(), content.size())));
      file.close();
    }
    // The writes above left both files' pages resident: drop them so
    // slow.bin is genuinely cold when the stall plan arms.
    fs->drop_caches();
  }

  /// Blocks until the server's worker has opened one more file than
  /// `opens_before` — the proof that it popped a request off the queue and
  /// is now inside do_get (about to stall on the cold read).
  void wait_for_open(std::uint64_t opens_before) {
    for (int i = 0; i < 5000 &&
                    fs->stats().op_snapshot(io::IoOp::kOpen).count <=
                        opens_before;
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GT(fs->stats().op_snapshot(io::IoOp::kOpen).count, opens_before);
  }

  util::TempDir dir;
  io::FaultStore* fault = nullptr;
  std::optional<io::ManagedFileSystem> fs;
};

/// Every backing data op sleeps this long once the stall plan is armed:
/// long enough that the queue choreography around it (a few loopback
/// round-trips) can never outrun the stalled worker, short enough to keep
/// the test quick.
constexpr std::uint32_t kStallUs = 1'500'000;

TEST_F(ServerLifecycleTest, QueueFullBackpressureReturns503) {
  SlowStoreRig rig;
  ServerOptions options;
  options.worker_threads = 1;
  options.max_pending = 1;
  MiniWebServer server(*rig.fs, options);
  server.start();

  // Warm doc.bin into the pool, then arm the stall: serving doc.bin again
  // never touches the backing store, serving cold slow.bin stalls on it.
  {
    HttpClient warm(server.port());
    ASSERT_EQ(warm.get("/doc.bin").status, 200);
  }
  io::FaultPlan plan;
  plan.latency_prob = 1.0;
  plan.latency_us = kStallUs;
  rig.fault->set_plan(plan);

  // Occupy the only worker deterministically: the cold GET is popped off
  // the queue (leaving it empty again) and stalls in the storage op.
  const auto opens =
      rig.fs->stats().op_snapshot(io::IoOp::kOpen).count;
  Socket busy = connect_loopback(server.port());
  HttpReader busy_reader(busy);
  const std::string slow = "GET /slow.bin HTTP/1.1\r\n\r\n";
  busy.send_all(slow.data(), slow.size());
  rig.wait_for_open(opens);

  // Fill the single queue slot with a second request.
  Socket queued = connect_loopback(server.port());
  const std::string q = "GET /doc.bin HTTP/1.1\r\nConnection: close\r\n\r\n";
  queued.send_all(q.data(), q.size());
  for (int i = 0; i < 2000 && server.stats().requests < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.stats().requests, 2u);

  // A third request must be rejected promptly with 503, not parked — and
  // the rejection must not block the event loop (it goes out best-effort
  // non-blocking).
  Socket rejected = connect_loopback(server.port());
  rejected.send_all(q.data(), q.size());
  const auto response = read_response(rejected);
  EXPECT_EQ(response.status, 503);
  EXPECT_FALSE(response.keep_alive);
  EXPECT_GE(server.stats().rejected_503, 1u);

  // The stall elapses: the in-flight request completes, then the queued
  // one is served.
  EXPECT_EQ(busy_reader.read_response().status, 200);
  EXPECT_EQ(read_response(queued).status, 200);
  server.stop();
}

TEST_F(ServerLifecycleTest, StopAnswersQueuedBacklogWith503) {
  // A request sitting in the pending queue when stop() begins used to be
  // silently dropped — the fd was closed without a byte ever sent.  The
  // drain must answer it with an explicit 503 instead.
  SlowStoreRig rig;
  ServerOptions options;
  options.worker_threads = 1;
  options.max_pending = 4;
  MiniWebServer server(*rig.fs, options);
  server.start();

  {
    HttpClient warm(server.port());
    ASSERT_EQ(warm.get("/doc.bin").status, 200);
  }
  io::FaultPlan plan;
  plan.latency_prob = 1.0;
  plan.latency_us = kStallUs;
  rig.fault->set_plan(plan);

  // Park the only worker inside the cold GET's storage stall.
  const auto opens =
      rig.fs->stats().op_snapshot(io::IoOp::kOpen).count;
  Socket busy = connect_loopback(server.port());
  const std::string slow = "GET /slow.bin HTTP/1.1\r\n\r\n";
  busy.send_all(slow.data(), slow.size());
  rig.wait_for_open(opens);

  // Two further requests land in the queue behind the stalled worker.
  Socket queued_a = connect_loopback(server.port());
  Socket queued_b = connect_loopback(server.port());
  const std::string q = "GET /doc.bin HTTP/1.1\r\nConnection: close\r\n\r\n";
  queued_a.send_all(q.data(), q.size());
  queued_b.send_all(q.data(), q.size());
  for (int i = 0; i < 2000 && server.stats().requests < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.stats().requests, 3u);

  server.stop();

  // Every queued request got a complete, well-formed rejection.
  for (Socket* queued : {&queued_a, &queued_b}) {
    const auto response = read_response(*queued);
    EXPECT_EQ(response.status, 503);
    EXPECT_FALSE(response.keep_alive);
  }
  EXPECT_EQ(server.stats().drained_503, 2u);
  EXPECT_FALSE(server.running());
}

TEST_F(ServerLifecycleTest, RestartResetsStatsAndSnapshotsPreviousRun) {
  // Regression: a restarted server used to carry the previous run's
  // counters, so the second run's stats() double-counted.  start() now
  // zeroes the live counters and stop() snapshots the finished run into
  // last_run_stats().
  MiniWebServer server(fs_, ServerOptions{});
  EXPECT_EQ(server.last_run_stats().requests, 0u);  // nothing ran yet

  server.start();
  HttpClient first(server.port(), /*keep_alive=*/true);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(first.get("/doc.bin").status, 200);
  }
  server.stop();
  const ServerStats run1 = server.stats();
  EXPECT_EQ(run1.requests, 3u);
  EXPECT_EQ(run1.get_body_bytes_sent, 3u * content_.size());
  EXPECT_EQ(server.last_run_stats().requests, 3u);

  server.start();
  // The live counters describe the current run only.
  EXPECT_EQ(server.stats().requests, 0u);
  EXPECT_EQ(server.stats().get_body_bytes_sent, 0u);
  EXPECT_TRUE(server.samples().empty());
  // ...while the previous run stays accounted.
  EXPECT_EQ(server.last_run_stats().requests, 3u);

  HttpClient second(server.port());
  ASSERT_EQ(second.get("/doc.bin").status, 200);
  server.stop();
  EXPECT_EQ(server.stats().requests, 1u);
  EXPECT_EQ(server.stats().get_body_bytes_sent, content_.size());
  EXPECT_EQ(server.last_run_stats().requests, 1u);  // snapshot rolled over

  // The metrics registry is deliberately NOT reset across restarts: its
  // counters are cumulative over the server's lifetime, as a Prometheus
  // scraper expects.
  EXPECT_EQ(server.metrics().snapshot().value("clio_server_requests_total"),
            1.0);  // callback reads the live (reset) counter...
  EXPECT_EQ(server.tracer().traces_started(), 4u);  // ...but traces accrue
}

}  // namespace
}  // namespace clio::net
