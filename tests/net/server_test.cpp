#include "net/server.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "io/file_store.hpp"
#include "net/client.hpp"
#include "net/load_gen.hpp"
#include "util/fs.hpp"
#include "util/temp_dir.hpp"

namespace clio::net {
namespace {

/// The worker records its sample just after responding, so a client that
/// already saw the response may still be ahead of the bookkeeping; spin
/// briefly until `n` samples are visible.
void wait_for_samples(const MiniWebServer& server, std::size_t n) {
  for (int i = 0; i < 1000 && server.samples().size() < n; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.samples().size(), n);
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}) {
    // The paper's three image files: 50607, 7501 and 14063 bytes.
    make_file("large.jpg", 50607);
    make_file("small.jpg", 7501);
    make_file("mid.jpg", 14063);
  }

  void make_file(const std::string& name, std::size_t size) {
    auto file = fs_.open(name, io::OpenMode::kTruncate);
    std::string content(size, 'x');
    for (std::size_t i = 0; i < size; ++i) {
      content[i] = static_cast<char>('a' + (i * 31) % 26);
    }
    file.write(std::as_bytes(
        std::span<const char>(content.data(), content.size())));
    file.close();
  }

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
};

TEST_F(ServerTest, GetReturnsFileContent) {
  MiniWebServer server(fs_);
  server.start();
  HttpClient client(server.port());
  const auto response = client.get("/mid.jpg");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body.size(), 14063u);
  EXPECT_EQ(response.body[0], 'a');
  server.stop();
}

TEST_F(ServerTest, GetMissingFileIs404) {
  MiniWebServer server(fs_);
  server.start();
  HttpClient client(server.port());
  EXPECT_EQ(client.get("/absent.jpg").status, 404);
  server.stop();
}

TEST_F(ServerTest, PostCreatesNewUniqueFiles) {
  MiniWebServer server(fs_);
  server.start();
  HttpClient client(server.port());
  const auto a = client.post("/upload", std::string(500, 'p'));
  const auto b = client.post("/upload", std::string(700, 'q'));
  EXPECT_EQ(a.status, 201);
  EXPECT_EQ(b.status, 201);
  EXPECT_NE(a.body, b.body);  // distinct generated names
  EXPECT_TRUE(fs_.exists(a.body));
  EXPECT_TRUE(fs_.exists(b.body));
  // Content landed intact.
  auto file = fs_.open(a.body, io::OpenMode::kRead);
  EXPECT_EQ(file.size(), 500u);
  server.stop();
}

TEST_F(ServerTest, UnsupportedMethodIs405) {
  MiniWebServer server(fs_);
  server.start();
  Socket socket = connect_loopback(server.port());
  const std::string wire = "DELETE /x HTTP/1.0\r\nContent-Length: 0\r\n\r\n";
  socket.send_all(wire.data(), wire.size());
  EXPECT_EQ(read_response(socket).status, 405);
  server.stop();
}

TEST_F(ServerTest, MalformedRequestGets400) {
  MiniWebServer server(fs_);
  server.start();
  Socket socket = connect_loopback(server.port());
  const std::string wire = "NONSENSE\r\n\r\n";
  socket.send_all(wire.data(), wire.size());
  EXPECT_EQ(read_response(socket).status, 400);
  server.stop();
  EXPECT_GE(server.stats().parse_errors, 1u);
}

TEST_F(ServerTest, SamplesRecordFileAndTotalTime) {
  MiniWebServer server(fs_);
  server.start();
  HttpClient client(server.port());
  static_cast<void>(client.get("/small.jpg"));
  static_cast<void>(client.post("/up", "data"));
  server.stop();
  const auto samples = server.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_TRUE(samples[0].is_get);
  EXPECT_EQ(samples[0].bytes, 7501u);
  EXPECT_FALSE(samples[1].is_get);
  EXPECT_EQ(samples[1].bytes, 4u);
  for (const auto& s : samples) {
    EXPECT_GE(s.file_ms, 0.0);
    EXPECT_GE(s.total_ms, s.file_ms);
  }
}

TEST_F(ServerTest, ConcurrentClientsAreServed) {
  MiniWebServer server(fs_);
  server.start();
  const auto result = run_get_load(
      server.port(), {"large.jpg", "small.jpg", "mid.jpg"},
      /*clients=*/4, /*requests_per_client=*/10);
  server.stop();
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.latencies_ms.size(), 40u);
  EXPECT_GT(result.bytes_received, 40u * 7501 / 2);
}

TEST_F(ServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  MiniWebServer server(fs_);
  server.start();
  HttpClient client(server.port(), /*keep_alive=*/true);
  for (int i = 0; i < 10; ++i) {
    const auto response = client.get("/small.jpg");
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body.size(), 7501u);
  }
  client.disconnect();
  // Let the worker notice the close before reading the counters.
  for (int i = 0; i < 1000 && server.stats().connections < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 10u);
  EXPECT_EQ(stats.accepted, 1u);  // one connection carried all ten
  EXPECT_EQ(stats.responses_ok, 10u);
  EXPECT_EQ(stats.get_body_bytes_sent, 10u * 7501u);
}

TEST_F(ServerTest, KeepAliveDisabledClosesAfterEachResponse) {
  ServerOptions options;
  options.keep_alive = false;
  MiniWebServer server(fs_, options);
  server.start();
  HttpClient client(server.port(), /*keep_alive=*/true);
  // The client asks for keep-alive but the server refuses: every response
  // says close, and the client transparently reconnects.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(client.get("/small.jpg").status, 200);
  }
  server.stop();
  EXPECT_EQ(server.stats().accepted, 4u);
}

TEST_F(ServerTest, MaxRequestsPerConnectionCapsKeepAlive) {
  ServerOptions options;
  options.max_requests_per_connection = 3;
  MiniWebServer server(fs_, options);
  server.start();
  HttpClient client(server.port(), /*keep_alive=*/true);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(client.get("/small.jpg").status, 200);
  }
  server.stop();
  EXPECT_EQ(server.stats().accepted, 2u);  // 6 requests / cap 3
}

TEST_F(ServerTest, PipelinedRequestsAreServedInOrder) {
  MiniWebServer server(fs_);
  server.start();
  Socket socket = connect_loopback(server.port());
  const std::string wire =
      "GET /small.jpg HTTP/1.1\r\n\r\nGET /mid.jpg HTTP/1.1\r\n"
      "Connection: close\r\n\r\n";
  socket.send_all(wire.data(), wire.size());
  HttpReader reader(socket);
  const auto first = reader.read_response();
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(first.body.size(), 7501u);
  EXPECT_TRUE(first.keep_alive);
  const auto second = reader.read_response();
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(second.body.size(), 14063u);
  EXPECT_FALSE(second.keep_alive);
  server.stop();
}

TEST_F(ServerTest, WorkerPoolServesParallelKeepAliveLoad) {
  ServerOptions options;
  options.worker_threads = 8;
  MiniWebServer server(fs_, options);
  server.start();
  LoadGenOptions load;
  load.connections = 8;
  load.requests_per_connection = 25;
  load.keep_alive = true;
  load.post_fraction = 0.2;
  load.seed = 11;
  load.files = {"large.jpg", "small.jpg", "mid.jpg"};
  const LoadReport report = LoadGenerator(load).run(server.port());
  server.stop();
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.ok, 8u * 25u);
  // The served-byte oracle in miniature: what the clients received in 200
  // bodies is exactly what the server accounted as sent.
  EXPECT_EQ(report.bytes_received, server.stats().get_body_bytes_sent);
  EXPECT_EQ(report.bytes_posted, server.stats().post_body_bytes);
}

TEST_F(ServerTest, RepeatedReadsGetFasterAfterFirst) {
  // Table 6 / Figure 6: first GET of a file is slower than later ones
  // (cold buffer pool; with vm_dispatch also the JIT compile).
  ServerOptions options;
  options.vm_dispatch = true;
  // A deliberately heavy compile cost so the first-request delta dwarfs
  // scheduler noise (the handler is ~70 bytecode bytes -> ~18 ms).
  options.vm_options.jit.compile_ns_per_byte = 250000;
  MiniWebServer server(fs_, options);
  server.start();
  server.make_cold();
  HttpClient client(server.port());
  for (int i = 0; i < 6; ++i) static_cast<void>(client.get("/mid.jpg"));
  server.stop();
  const auto samples = server.samples();
  ASSERT_EQ(samples.size(), 6u);
  // Compare against the median of the warm trials: robust to a single
  // scheduler hiccup on a loaded single-core host.
  std::vector<double> warm;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    warm.push_back(samples[i].file_ms);
  }
  std::sort(warm.begin(), warm.end());
  EXPECT_GT(samples[0].file_ms, warm[warm.size() / 2]);
  // The engine compiled do_get exactly once.
  EXPECT_EQ(server.engine()->jit_stats().compilations, 1u);
}

TEST_F(ServerTest, VmDispatchServesIdenticalContent) {
  ServerOptions options;
  options.vm_dispatch = true;
  options.vm_options.jit.compile_ns_per_byte = 0;
  MiniWebServer server(fs_, options);
  server.start();
  HttpClient client(server.port());
  const auto vm_response = client.get("/small.jpg");
  server.stop();

  MiniWebServer native(fs_);
  native.start();
  HttpClient native_client(native.port());
  const auto native_response = native_client.get("/small.jpg");
  native.stop();

  EXPECT_EQ(vm_response.status, 200);
  EXPECT_EQ(vm_response.body, native_response.body);
}

TEST_F(ServerTest, VmPostRoundTrips) {
  ServerOptions options;
  options.vm_dispatch = true;
  options.vm_options.jit.compile_ns_per_byte = 0;
  MiniWebServer server(fs_, options);
  server.start();
  HttpClient client(server.port());
  const auto response = client.post("/up", "managed write");
  server.stop();
  ASSERT_EQ(response.status, 201);
  auto file = fs_.open(response.body, io::OpenMode::kRead);
  std::string content(13, '\0');
  file.read_exact(std::as_writable_bytes(
      std::span<char>(content.data(), content.size())));
  EXPECT_EQ(content, "managed write");
}

TEST_F(ServerTest, StopIsIdempotentAndRestartable) {
  MiniWebServer server(fs_);
  server.start();
  server.start();  // no-op
  server.stop();
  server.stop();  // no-op
  server.start();
  HttpClient client(server.port());
  EXPECT_EQ(client.get("/small.jpg").status, 200);
  server.stop();
}

TEST_F(ServerTest, MakeColdResetsCaches) {
  // Wall-clock deltas at this scale are noise on a warm OS page cache, so
  // assert the mechanism directly: after make_cold the first GET misses in
  // the buffer pool, the second is served from it.
  MiniWebServer server(fs_);
  server.start();
  HttpClient client(server.port());
  static_cast<void>(client.get("/large.jpg"));
  wait_for_samples(server, 1);
  // Samples are recorded before the send, so the worker may still hold the
  // gather path's page pins here — and pinned pages survive make_cold(),
  // which would leave the "cold" GET warm.  responses_ok increments only
  // after the pins are released; sync on it.
  for (int i = 0; i < 1000 && server.stats().responses_ok < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.make_cold();
  const auto before_cold = fs_.pool().stats();
  static_cast<void>(client.get("/large.jpg"));  // cold again
  wait_for_samples(server, 2);
  const auto after_cold = fs_.pool().stats();
  EXPECT_GT(after_cold.misses + after_cold.prefetches,
            before_cold.misses + before_cold.prefetches);
  static_cast<void>(client.get("/large.jpg"));  // warm
  wait_for_samples(server, 3);
  server.stop();
  const auto after_warm = fs_.pool().stats();
  EXPECT_EQ(after_warm.misses, after_cold.misses);
  EXPECT_GT(after_warm.hits, after_cold.hits);
}

}  // namespace
}  // namespace clio::net
