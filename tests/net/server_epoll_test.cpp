// Event-loop tests for the readiness-driven server: connection-vs-thread
// economics (thousands of idle keep-alive connections on a tiny worker
// pool), stop() drain with a deadline and no fd leaks, pipelined bursts
// vs the idle timeout, the connection cap's best-effort 503 against a
// non-reading client, and the zero-copy response tiers (hot cache,
// page gather, sendfile) staying byte-identical.  These run under the
// TSan CI label (`net`).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "io/file_store.hpp"
#include "net/client.hpp"
#include "net/http.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "util/error.hpp"
#include "util/temp_dir.hpp"

namespace clio::net {
namespace {

/// Open fds in this process right now — the leak oracle.  Every fd the
/// server owns (listener, epoll set, eventfd, every connection) must be
/// gone after stop(), so the count returns to its pre-start baseline.
std::size_t open_fd_count() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}

class ServerEpollTest : public ::testing::Test {
 protected:
  ServerEpollTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}) {
    auto file = fs_.open("doc.bin", io::OpenMode::kTruncate);
    content_.resize(20000);
    for (std::size_t i = 0; i < content_.size(); ++i) {
      content_[i] = static_cast<char>('a' + (i * 13) % 26);
    }
    file.write(std::as_bytes(
        std::span<const char>(content_.data(), content_.size())));
    file.close();
  }

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
  std::string content_;
};

TEST_F(ServerEpollTest, HundredsOfIdleConnectionsDrainWithinDeadline) {
  // The C10K point of the event loop: parked keep-alive connections cost
  // an fd each, not a thread each.  With 2 workers, 400 live connections
  // would deadlock a thread-per-connection design outright.
  const std::size_t kConns = 400;
  const std::size_t fds_before = open_fd_count();
  ServerOptions options;
  options.worker_threads = 2;
  options.drain_deadline_ms = 1000;
  MiniWebServer server(fs_, options);
  server.start();

  std::vector<Socket> parked;
  parked.reserve(kConns);
  const std::string wire =
      "GET /doc.bin HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
  for (std::size_t i = 0; i < kConns; ++i) {
    Socket s = connect_loopback(server.port());
    s.send_all(wire.data(), wire.size());
    const auto response = read_response(s);
    ASSERT_EQ(response.status, 200);
    ASSERT_EQ(response.body, content_);
    parked.push_back(std::move(s));  // idle from here on
  }
  EXPECT_EQ(server.stats().requests, kConns);

  // Fresh traffic still flows with every parked connection held open.
  {
    HttpClient fresh(server.port());
    EXPECT_EQ(fresh.get("/doc.bin").status, 200);
  }

  // stop() closes every parked connection and returns inside the drain
  // deadline (plus scheduling slack) — it never waits on idle peers.
  const auto t0 = std::chrono::steady_clock::now();
  server.stop();
  const auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_FALSE(server.running());
  EXPECT_LT(stop_ms, 1000 + 2000);

  // Fd accounting: once the client ends are gone too, the process is back
  // to its baseline — nothing (connection fds, epoll set, eventfd,
  // listener) leaked across the whole start/serve/stop cycle.
  parked.clear();
  EXPECT_LE(open_fd_count(), fds_before + 4);
}

TEST_F(ServerEpollTest, PipelinedBurstIsNeverIdleTimedOut) {
  // Regression (arm/disarm bug): requests pipelined into one segment used
  // to sit complete in the reader's buffer while the idle timer — armed
  // as if the connection were parked — 408'd them.  Buffered complete
  // requests must all be answered, however tight the idle timeout.
  ServerOptions options;
  options.worker_threads = 2;
  options.idle_timeout_ms = 100;
  MiniWebServer server(fs_, options);
  server.start();

  const std::string one =
      "GET /doc.bin HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
  std::string burst;
  for (int i = 0; i < 5; ++i) burst += one;

  Socket socket = connect_loopback(server.port());
  socket.send_all(burst.data(), burst.size());
  HttpReader reader(socket);
  for (int i = 0; i < 5; ++i) {
    const auto response = reader.read_response();
    EXPECT_EQ(response.status, 200) << "pipelined request " << i;
    EXPECT_EQ(response.body, content_);
  }
  EXPECT_EQ(server.stats().requests, 5u);
  EXPECT_EQ(server.stats().timeouts_408, 0u);

  // Once the burst is drained the connection really is idle: aging out is
  // a clean close (EOF at the client, surfacing as an empty-response parse
  // error), never a 408.
  EXPECT_THROW((void)reader.read_response(), util::ParseError);
  server.stop();
  EXPECT_EQ(server.stats().timeouts_408, 0u);
  EXPECT_EQ(server.stats().parse_errors, 0u);
}

TEST_F(ServerEpollTest, ConnectionCapRejectsWithoutWedgingTheLoop) {
  // Regression (accept-path blocking send): the over-cap 503 goes out
  // best-effort non-blocking, so a client that never reads — the case
  // that used to park the accept path in send() — cannot stall serving.
  ServerOptions options;
  options.worker_threads = 2;
  options.max_connections = 1;
  MiniWebServer server(fs_, options);
  server.start();

  Socket holder = connect_loopback(server.port());
  const std::string wire =
      "GET /doc.bin HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
  holder.send_all(wire.data(), wire.size());
  ASSERT_EQ(read_response(holder).status, 200);

  // Over-cap connections that never read a byte: the server must shed
  // them (best-effort 503 + close) without blocking the event loop.
  std::vector<Socket> silent;
  for (int i = 0; i < 8; ++i) {
    silent.push_back(connect_loopback(server.port()));
  }
  for (int i = 0; i < 2000 && server.stats().rejected_503 < 8; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.stats().rejected_503, 8u);

  // The loop is alive: the admitted connection keeps being served.
  holder.send_all(wire.data(), wire.size());
  EXPECT_EQ(read_response(holder).status, 200);

  // A shed connection that does eventually read finds the well-formed
  // rejection (sent while its socket buffer was empty, so best-effort
  // always lands here).
  const auto rejected = read_response(silent.front());
  EXPECT_EQ(rejected.status, 503);
  EXPECT_FALSE(rejected.keep_alive);
  server.stop();
}

TEST_F(ServerEpollTest, HotCacheHitsAreByteIdenticalAndPostInvalidates) {
  ServerOptions options;
  options.hot_cache_entries = 4;
  MiniWebServer server(fs_, options);
  server.start();

  HttpClient client(server.port(), /*keep_alive=*/true);
  // Miss fills, hit serves from memory — byte-identical both ways.
  ASSERT_EQ(client.get("/doc.bin").status, 200);
  const auto hit = client.get("/doc.bin");
  EXPECT_EQ(hit.status, 200);
  EXPECT_EQ(hit.body, content_);
  EXPECT_GE(server.stats().cache_responses, 1u);
  const auto warm = server.hot_cache_stats();
  EXPECT_GE(warm.hits, 1u);
  EXPECT_GE(warm.insertions, 1u);

  // Any POST invalidates the whole cache (writers pick random names, so
  // per-key invalidation cannot be trusted): the next GET misses, refills
  // and still serves the exact bytes.
  EXPECT_EQ(client.post("/upload", "fresh-bytes").status, 201);
  EXPECT_GE(server.hot_cache_stats().invalidations, 1u);
  const auto refill = client.get("/doc.bin");
  EXPECT_EQ(refill.status, 200);
  EXPECT_EQ(refill.body, content_);
  // The fill happens after the response is on the wire, so give the worker
  // a beat to reach it before asserting.
  for (int i = 0; i < 2000 &&
                  server.hot_cache_stats().insertions < warm.insertions + 1;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.hot_cache_stats().insertions, warm.insertions + 1);
  server.stop();
}

TEST_F(ServerEpollTest, ZeroCopyTiersStayByteIdentical) {
  // Page-gather tier: default options (sendfile floor far above the file).
  {
    MiniWebServer server(fs_, ServerOptions{});
    server.start();
    HttpClient client(server.port());
    const auto response = client.get("/doc.bin");
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, content_);
    // The tier counter ticks after the bytes are on the wire; give the
    // worker a beat to reach it.
    for (int i = 0; i < 2000 && server.stats().gather_responses < 1; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(server.stats().gather_responses, 1u);
    server.stop();
  }
  // Sendfile tier: drop the floor below the file size; the store is a
  // bare RealFileStore, so the kernel path is eligible.
  {
    ServerOptions options;
    options.sendfile_min_bytes = 1024;
    MiniWebServer server(fs_, options);
    server.start();
    HttpClient client(server.port());
    const auto response = client.get("/doc.bin");
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, content_);
    for (int i = 0; i < 2000 && server.stats().sendfile_responses < 1; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(server.stats().sendfile_responses, 1u);
    server.stop();
  }
}

}  // namespace
}  // namespace clio::net
