// The serving layer's observability surface: /metrics (Prometheus text)
// and /statz (JSON snapshot) answering live — including while the storage
// breaker has the server in degraded mode — without perturbing the
// served-byte oracle, plus span accounting balancing once traffic
// quiesces and the shared-registry aggregation option.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "io/file_store.hpp"
#include "net/client.hpp"
#include "net/load_gen.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "util/resilience.hpp"
#include "util/temp_dir.hpp"

namespace clio::net {
namespace {

class ServerObservabilityTest : public ::testing::Test {
 protected:
  ServerObservabilityTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}) {
    auto file = fs_.open("doc.bin", io::OpenMode::kTruncate);
    std::string content(4096, 'd');
    file.write(std::as_bytes(
        std::span<const char>(content.data(), content.size())));
    file.close();
  }

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
};

void expect_contains(const std::string& haystack, const std::string& needle) {
  EXPECT_NE(haystack.find(needle), std::string::npos)
      << "missing \"" << needle << "\" in:\n"
      << haystack.substr(0, 2000);
}

TEST_F(ServerObservabilityTest, MetricsEndpointServesPrometheusText) {
  MiniWebServer server(fs_);
  server.start();
  HttpClient client(server.port(), /*keep_alive=*/true);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.get("/doc.bin").status, 200);
  }
  const auto response = client.get("/metrics");
  server.stop();
  EXPECT_EQ(response.status, 200);
  const std::string& text = response.body;
  expect_contains(text, "# TYPE clio_server_requests_total counter");
  expect_contains(text, "# TYPE clio_pool_occupancy_ratio gauge");
  expect_contains(text, "# TYPE clio_request_stage_handler_ns histogram");
  expect_contains(text, "clio_request_stage_handler_ns_count 3");
  expect_contains(text, "clio_request_stage_queue_wait_ns_bucket{le=");
  expect_contains(text, "clio_io_read_bytes_total");
  // The three file GETs were already counted when the scrape rendered.
  expect_contains(text, "clio_server_responses_ok_total 3");
}

TEST_F(ServerObservabilityTest, StatzServesJsonSnapshot) {
  MiniWebServer server(fs_);
  server.start();
  HttpClient client(server.port(), /*keep_alive=*/true);
  EXPECT_EQ(client.get("/doc.bin").status, 200);
  const auto response = client.get("/statz");
  server.stop();
  EXPECT_EQ(response.status, 200);
  const std::string& json = response.body;
  EXPECT_EQ(json.front(), '{');
  expect_contains(json, "\"running\": true");
  expect_contains(json, "\"server\"");
  expect_contains(json, "\"last_run\"");
  expect_contains(json, "\"pool\"");
  expect_contains(json, "\"occupancy\"");
  // No breaker armed: the key is present but explicitly null.
  expect_contains(json, "\"breaker\": null");
  expect_contains(json, "\"io\"");
  expect_contains(json, "\"stages\"");
  expect_contains(json, "\"queue_wait\"");
  expect_contains(json, "\"storage_op\"");
  expect_contains(json, "\"traces\"");
  expect_contains(json, "\"spans_opened\"");
}

TEST_F(ServerObservabilityTest, IntrospectionDoesNotPerturbServedByteOracle) {
  MiniWebServer server(fs_);
  server.start();
  HttpClient client(server.port(), /*keep_alive=*/true);
  EXPECT_EQ(client.get("/doc.bin").status, 200);
  EXPECT_EQ(client.get("/metrics").status, 200);
  EXPECT_EQ(client.get("/statz").status, 200);
  EXPECT_EQ(client.get("/healthz").status, 200);
  server.stop();
  const ServerStats stats = server.stats();
  // Scrapes are 2xx responses but never count as served file bytes.
  EXPECT_EQ(stats.get_body_bytes_sent, 4096u);
  EXPECT_EQ(stats.responses_ok, 4u);
  EXPECT_EQ(stats.requests, 4u);
}

TEST_F(ServerObservabilityTest, EndpointsAnswerWhileBreakerOpen) {
  util::CircuitBreaker breaker;
  ServerOptions options;
  options.breaker = &breaker;
  MiniWebServer server(fs_, options);
  server.start();
  while (breaker.state() != util::CircuitBreaker::State::kOpen) {
    if (breaker.try_acquire()) static_cast<void>(breaker.record_failure());
  }
  HttpClient client(server.port(), /*keep_alive=*/true);
  // File traffic is being 503'd...
  EXPECT_EQ(client.get("/doc.bin").status, 503);
  // ...but the diagnostic surface stays answerable.
  const auto metrics = client.get("/metrics");
  EXPECT_EQ(metrics.status, 200);
  expect_contains(metrics.body, "clio_breaker_state");
  const auto statz = client.get("/statz");
  EXPECT_EQ(statz.status, 200);
  expect_contains(statz.body, "\"state\": \"open\"");
  expect_contains(statz.body, "\"retry_after_ms\"");
  server.stop();
  EXPECT_GE(server.stats().degraded_503, 1u);
}

TEST_F(ServerObservabilityTest, SpanAccountingBalancesAfterLoad) {
  ServerOptions options;
  options.worker_threads = 4;
  MiniWebServer server(fs_, options);
  server.start();
  LoadGenOptions load;
  load.connections = 4;
  load.requests_per_connection = 20;
  load.keep_alive = true;
  load.post_fraction = 0.25;
  load.seed = 7;
  load.files = {"doc.bin"};
  const LoadReport report = LoadGenerator(load).run(server.port());
  server.stop();
  EXPECT_EQ(report.errors, 0u);
  const obs::RequestTracer& tracer = server.tracer();
  EXPECT_EQ(tracer.traces_started(), 4u * 20u);
  EXPECT_GT(tracer.spans_opened(), 0u);
  EXPECT_EQ(tracer.spans_opened(), tracer.spans_closed());
  // Every stage timer saw samples (accept/queue-wait are recorded out of
  // band; parse/handler/storage/send ride the ambient trace).
  const obs::MetricsSnapshot snap = server.metrics().snapshot();
  for (const char* stage :
       {"accept", "queue_wait", "parse", "handler", "storage_op", "send"}) {
    const auto* dist = snap.distribution(
        "clio_request_stage_" + std::string(stage) + "_ns");
    ASSERT_NE(dist, nullptr) << stage;
    EXPECT_GT(dist->hist.count, 0u) << stage;
  }
}

TEST_F(ServerObservabilityTest, TraceIdsAreDeterministicAcrossRuns) {
  // Same trace seed, same single-connection request sequence → the /statz
  // counters agree and the underlying ID sequence is fixed (pinned
  // directly on the tracer, since IDs are not exposed per response).
  ServerOptions options;
  options.trace_seed = 1234;
  MiniWebServer a(fs_, options);
  MiniWebServer b(fs_, options);
  // Both tracers mint identical sequences before any traffic runs.
  std::vector<std::uint64_t> ids_a, ids_b;
  for (int i = 0; i < 8; ++i) {
    ids_a.push_back(const_cast<obs::RequestTracer&>(a.tracer())
                        .next_trace_id());
    ids_b.push_back(const_cast<obs::RequestTracer&>(b.tracer())
                        .next_trace_id());
  }
  EXPECT_EQ(ids_a, ids_b);
}

TEST_F(ServerObservabilityTest, SharedRegistryAggregates) {
  obs::MetricsRegistry shared;
  ServerOptions options;
  options.metrics = &shared;
  MiniWebServer server(fs_, options);
  EXPECT_EQ(&server.metrics(), &shared);
  server.start();
  HttpClient client(server.port());
  EXPECT_EQ(client.get("/doc.bin").status, 200);
  server.stop();
  EXPECT_EQ(shared.snapshot().value("clio_server_requests_total"), 1.0);
  // The server's callback metrics deregister on destruction, freeing the
  // names for a successor publishing into the same registry.
}

TEST_F(ServerObservabilityTest, CallbacksDeregisterOnDestruction) {
  obs::MetricsRegistry shared;
  {
    ServerOptions options;
    options.metrics = &shared;
    MiniWebServer server(fs_, options);
    EXPECT_TRUE(shared.snapshot()
                    .value("clio_server_requests_total")
                    .has_value());
  }
  EXPECT_FALSE(shared.snapshot()
                   .value("clio_server_requests_total")
                   .has_value());
  // A second server can now publish into the same registry without a
  // name collision.
  ServerOptions options;
  options.metrics = &shared;
  MiniWebServer successor(fs_, options);
  EXPECT_TRUE(shared.snapshot()
                  .value("clio_server_requests_total")
                  .has_value());
}

}  // namespace
}  // namespace clio::net
