#include "trace/format.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace clio::trace {
namespace {

TraceFile minimal_trace() {
  TraceFile t;
  t.header.sample_file = "sample.bin";
  t.header.num_processes = 1;
  t.header.num_files = 1;
  TraceRecord open;
  open.op = TraceOp::kOpen;
  TraceRecord read;
  read.op = TraceOp::kRead;
  read.offset = 0;
  read.length = 4096;
  read.wall_clock = 0.001;
  TraceRecord close;
  close.op = TraceOp::kClose;
  close.wall_clock = 0.002;
  t.records = {open, read, close};
  t.header.num_records = 3;
  return t;
}

TEST(TraceValidate, AcceptsWellFormedTrace) {
  EXPECT_NO_THROW(validate(minimal_trace()));
}

TEST(TraceValidate, RejectsRecordCountMismatch) {
  auto t = minimal_trace();
  t.header.num_records = 99;
  EXPECT_THROW(validate(t), util::ParseError);
}

TEST(TraceValidate, RejectsEmptySampleName) {
  auto t = minimal_trace();
  t.header.sample_file.clear();
  EXPECT_THROW(validate(t), util::ParseError);
}

TEST(TraceValidate, RejectsZeroProcesses) {
  auto t = minimal_trace();
  t.header.num_processes = 0;
  EXPECT_THROW(validate(t), util::ParseError);
}

TEST(TraceValidate, RejectsPidOutOfRange) {
  auto t = minimal_trace();
  t.records[1].pid = 5;
  EXPECT_THROW(validate(t), util::ParseError);
}

TEST(TraceValidate, RejectsFidOutOfRange) {
  auto t = minimal_trace();
  t.records[1].fid = 2;
  EXPECT_THROW(validate(t), util::ParseError);
}

TEST(TraceValidate, RejectsBackwardsWallClock) {
  auto t = minimal_trace();
  t.records[2].wall_clock = 0.0001;
  EXPECT_THROW(validate(t), util::ParseError);
}

TEST(TraceValidate, RejectsZeroCount) {
  auto t = minimal_trace();
  t.records[1].count = 0;
  EXPECT_THROW(validate(t), util::ParseError);
}

TEST(TraceValidate, RejectsCloseWithoutOpen) {
  TraceFile t;
  t.header.sample_file = "s";
  TraceRecord close;
  close.op = TraceOp::kClose;
  t.records = {close};
  t.header.num_records = 1;
  EXPECT_THROW(validate(t), util::ParseError);
}

TEST(TraceValidate, AllowsNestedOpens) {
  TraceFile t;
  t.header.sample_file = "s";
  TraceRecord open;
  open.op = TraceOp::kOpen;
  TraceRecord close;
  close.op = TraceOp::kClose;
  t.records = {open, open, close, close};
  t.header.num_records = 4;
  EXPECT_NO_THROW(validate(t));
}

TEST(TraceFormat, OpNamesAreStable) {
  EXPECT_EQ(op_name(TraceOp::kOpen), "open");
  EXPECT_EQ(op_name(TraceOp::kSeek), "seek");
}

}  // namespace
}  // namespace clio::trace
