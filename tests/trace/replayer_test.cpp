#include "trace/replayer.hpp"

#include <gtest/gtest.h>

#include "io/file_store.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/temp_dir.hpp"

namespace clio::trace {
namespace {

class ReplayerTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kSampleSize = 1 << 20;  // 1 MiB

  ReplayerTest() {
    io::ManagedFsOptions options;
    options.page_size = 4096;
    options.pool_pages = 512;
    fs_ = std::make_unique<io::ManagedFileSystem>(
        std::make_unique<io::RealFileStore>(dir_.path()), options);
    util::create_sample_file(dir_.path() / "sample.bin", kSampleSize);
  }

  util::TempDir dir_;
  std::unique_ptr<io::ManagedFileSystem> fs_;
};

TEST_F(ReplayerTest, SequentialReplayTouchesAllBytes) {
  const auto t = sequential_read(kSampleSize, 64 * 1024);
  TraceReplayer replayer(*fs_);
  const auto result = replayer.replay(t);
  EXPECT_EQ(result.bytes_read, kSampleSize);
  EXPECT_EQ(result.bytes_written, 0u);
  EXPECT_EQ(result.op(TraceOp::kOpen).count(), 1u);
  EXPECT_EQ(result.op(TraceOp::kClose).count(), 1u);
  EXPECT_EQ(result.op(TraceOp::kRead).count(), 16u);
  EXPECT_GT(result.wall_ms, 0.0);
}

TEST_F(ReplayerTest, VerifyContentPassesOnPristineSample) {
  ReplayOptions options;
  options.verify_content = true;
  const auto t = sequential_read(256 * 1024, 32 * 1024);
  TraceReplayer replayer(*fs_, options);
  EXPECT_NO_THROW(replayer.replay(t));
}

TEST_F(ReplayerTest, VerifyContentCatchesCorruption) {
  // Overwrite part of the sample with different bytes, then verify-replay.
  {
    auto f = fs_->open("sample.bin", io::OpenMode::kReadWrite);
    f.seek(1000);
    const std::string junk(64, '!');
    f.write(std::as_bytes(std::span<const char>(junk.data(), junk.size())));
  }
  ReplayOptions options;
  options.verify_content = true;
  const auto t = sequential_read(8 * 1024, 8 * 1024);
  TraceReplayer replayer(*fs_, options);
  EXPECT_THROW(replayer.replay(t), util::IoError);
}

TEST_F(ReplayerTest, WritesLandInSampleFile) {
  const auto t = sequential_write(128 * 1024, 16 * 1024);
  TraceReplayer replayer(*fs_);
  const auto result = replayer.replay(t);
  EXPECT_EQ(result.bytes_written, 128u * 1024);
  // After replay (trace closes the file), content must match the canonical
  // pattern the replayer writes.
  ReplayOptions verify;
  verify.verify_content = true;
  TraceReplayer checker(*fs_, verify);
  EXPECT_NO_THROW(checker.replay(sequential_read(128 * 1024, 16 * 1024)));
}

TEST_F(ReplayerTest, RowsMatchTraceOrder) {
  const auto t = seek_read_sequence({{0, 100}, {50000, 200}});
  TraceReplayer replayer(*fs_);
  const auto result = replayer.replay(t);
  ASSERT_EQ(result.rows.size(), 6u);
  EXPECT_EQ(result.rows[1].op, TraceOp::kSeek);
  EXPECT_EQ(result.rows[2].op, TraceOp::kRead);
  EXPECT_EQ(result.rows[2].length, 100u);
  EXPECT_EQ(result.rows[3].offset, 50000u);
  for (const auto& row : result.rows) EXPECT_GE(row.ms, 0.0);
}

TEST_F(ReplayerTest, KeepRowsFalseSuppressesRows) {
  ReplayOptions options;
  options.keep_rows = false;
  TraceReplayer replayer(*fs_, options);
  const auto result = replayer.replay(sequential_read(64 * 1024, 16 * 1024));
  EXPECT_TRUE(result.rows.empty());
  EXPECT_EQ(result.op(TraceOp::kRead).count(), 4u);
}

TEST_F(ReplayerTest, CountFieldRepeatsOperations) {
  TraceFile t;
  t.header.sample_file = "sample.bin";
  TraceRecord open;
  open.op = TraceOp::kOpen;
  TraceRecord read;
  read.op = TraceOp::kRead;
  read.count = 5;
  read.offset = 0;
  read.length = 4096;
  read.wall_clock = 0.001;
  TraceRecord close;
  close.op = TraceOp::kClose;
  close.wall_clock = 0.002;
  t.records = {open, read, close};
  t.header.num_records = 3;
  TraceReplayer replayer(*fs_);
  const auto result = replayer.replay(t);
  EXPECT_EQ(result.op(TraceOp::kRead).count(), 5u);
  EXPECT_EQ(result.bytes_read, 5u * 4096);
}

TEST_F(ReplayerTest, ReadBeforeOpenRejected) {
  TraceFile t;
  t.header.sample_file = "sample.bin";
  TraceRecord read;
  read.op = TraceOp::kRead;
  read.length = 16;
  t.records = {read};
  t.header.num_records = 1;
  TraceReplayer replayer(*fs_);
  EXPECT_THROW(replayer.replay(t), util::ParseError);
}

TEST_F(ReplayerTest, WarmReplayFasterThanCold) {
  // Replay the same sequential trace twice without dropping caches: the
  // second pass is served from the buffer pool.
  const auto t = sequential_read(kSampleSize, 64 * 1024);
  TraceReplayer replayer(*fs_);
  fs_->drop_caches();
  const auto cold = replayer.replay(t);
  const auto warm = replayer.replay(t);
  EXPECT_LT(warm.op(TraceOp::kRead).mean(),
            cold.op(TraceOp::kRead).mean() * 1.5);
}

TEST_F(ReplayerTest, MultiProcessStreamsKeepIndependentHandles) {
  // Two pids interleave opens/reads/closes of the same fid, as Pgrep's
  // workers do; each (pid, fid) must own its slot or a close by one stream
  // would orphan the other's reads.
  TraceFile t;
  t.header.sample_file = "sample.bin";
  t.header.num_processes = 2;
  auto rec = [&](TraceOp op, std::uint32_t pid, std::uint64_t offset,
                 std::uint64_t length, double clock) {
    TraceRecord r;
    r.op = op;
    r.pid = pid;
    r.offset = offset;
    r.length = length;
    r.wall_clock = clock;
    t.records.push_back(r);
  };
  rec(TraceOp::kOpen, 0, 0, 0, 0.0);
  rec(TraceOp::kOpen, 1, 0, 0, 0.001);
  rec(TraceOp::kRead, 0, 0, 4096, 0.002);
  rec(TraceOp::kClose, 1, 0, 0, 0.003);   // pid 1 closes...
  rec(TraceOp::kRead, 0, 4096, 4096, 0.004);  // ...pid 0 keeps reading
  rec(TraceOp::kClose, 0, 0, 0, 0.005);
  t.header.num_records = t.records.size();
  TraceReplayer replayer(*fs_);
  const auto result = replayer.replay(t);
  EXPECT_EQ(result.bytes_read, 8192u);
  EXPECT_EQ(result.op(TraceOp::kOpen).count(), 2u);
  EXPECT_EQ(result.op(TraceOp::kClose).count(), 2u);
}

TEST_F(ReplayerTest, SeeksAreCheapWhenWarm) {
  // Warm the pool with a sequential pass, then time pure seeks: they must
  // be far cheaper than the initial cold reads (Table 3's contrast).
  TraceReplayer replayer(*fs_);
  const auto warmup = replayer.replay(sequential_read(kSampleSize, 64 * 1024));
  const auto seeks =
      replayer.replay(seek_sequence({0, 65536, 131072, 262144}));
  EXPECT_LT(seeks.op(TraceOp::kSeek).mean(),
            warmup.op(TraceOp::kRead).mean());
}

}  // namespace
}  // namespace clio::trace
