#include <gtest/gtest.h>

#include "trace/reader.hpp"
#include "trace/synthetic.hpp"
#include "trace/writer.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/temp_dir.hpp"

namespace clio::trace {
namespace {

TEST(TraceRoundTrip, SequentialTraceSurvivesDisk) {
  util::TempDir dir;
  const auto original = sequential_read(1 << 20, 4096);
  write_trace(dir.file("t.trc"), original);
  const auto loaded = read_trace(dir.file("t.trc"));
  EXPECT_EQ(loaded.header.sample_file, original.header.sample_file);
  EXPECT_EQ(loaded.header.num_records, original.header.num_records);
  ASSERT_EQ(loaded.records.size(), original.records.size());
  for (std::size_t i = 0; i < loaded.records.size(); ++i) {
    EXPECT_EQ(loaded.records[i], original.records[i]) << "record " << i;
  }
}

TEST(TraceRoundTrip, RecordOffsetPointsAtRecords) {
  util::TempDir dir;
  auto t = seek_sequence({100, 200, 300});
  write_trace(dir.file("t.trc"), t);
  const auto loaded = read_trace(dir.file("t.trc"));
  // Header fixed part + name: 8 magic + 4 + 4 + 8 + 8 + 4 + len.
  EXPECT_EQ(loaded.header.record_offset,
            36u + t.header.sample_file.size());
}

TEST(TraceRoundTrip, ReaderRejectsBadMagic) {
  util::TempDir dir;
  util::write_text_file(dir.file("junk.trc"), "NOTATRACEFILE_____");
  EXPECT_THROW(read_trace(dir.file("junk.trc")), util::ParseError);
}

TEST(TraceRoundTrip, ReaderRejectsTruncatedFile) {
  util::TempDir dir;
  const auto t = sequential_read(64 * 1024, 4096);
  write_trace(dir.file("t.trc"), t);
  auto bytes = util::read_file(dir.file("t.trc"));
  bytes.resize(bytes.size() / 2);
  util::write_file(dir.file("cut.trc"), bytes);
  EXPECT_THROW(read_trace(dir.file("cut.trc")), util::ParseError);
}

TEST(TraceRoundTrip, ReaderRejectsMissingFile) {
  util::TempDir dir;
  EXPECT_THROW(read_trace(dir.file("absent.trc")), util::ParseError);
}

TEST(TraceRoundTrip, WriterRejectsInvalidTrace) {
  util::TempDir dir;
  TraceFile bad;
  bad.header.sample_file = "s";
  TraceRecord r;
  r.op = TraceOp::kClose;  // close without open
  bad.records = {r};
  bad.header.num_records = 1;
  EXPECT_THROW(write_trace(dir.file("bad.trc"), bad), util::ParseError);
}

TEST(TraceRecorder, StampsMonotonicClocks) {
  TraceRecorder rec("sample.bin");
  rec.record(TraceOp::kOpen, 0, 0);
  rec.record(TraceOp::kRead, 0, 1024);
  rec.record(TraceOp::kClose, 0, 0);
  const auto t = rec.finish();
  ASSERT_EQ(t.records.size(), 3u);
  EXPECT_LE(t.records[0].wall_clock, t.records[1].wall_clock);
  EXPECT_LE(t.records[1].wall_clock, t.records[2].wall_clock);
  EXPECT_EQ(t.header.num_records, 3u);
}

TEST(TraceRecorder, CountsRecords) {
  TraceRecorder rec("s");
  EXPECT_EQ(rec.records_so_far(), 0u);
  rec.record(TraceOp::kOpen, 0, 0);
  EXPECT_EQ(rec.records_so_far(), 1u);
}

}  // namespace
}  // namespace clio::trace
