#include "trace/synthetic.hpp"

#include <gtest/gtest.h>

#include "trace/stats.hpp"
#include "util/error.hpp"

namespace clio::trace {
namespace {

TEST(Synthetic, SequentialReadShape) {
  const auto t = sequential_read(10 * 4096, 4096);
  const auto s = compute_stats(t);
  EXPECT_EQ(s.count(TraceOp::kOpen), 1u);
  EXPECT_EQ(s.count(TraceOp::kClose), 1u);
  EXPECT_EQ(s.count(TraceOp::kRead), 10u);
  EXPECT_EQ(s.bytes_read, 10u * 4096);
  EXPECT_DOUBLE_EQ(s.sequentiality, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_request_bytes, 4096.0);
}

TEST(Synthetic, SequentialHandlesPartialTailBlock) {
  const auto t = sequential_read(10000, 4096);  // 4096+4096+1808
  const auto s = compute_stats(t);
  EXPECT_EQ(s.count(TraceOp::kRead), 3u);
  EXPECT_EQ(s.bytes_read, 10000u);
  EXPECT_EQ(t.records[3].length, 10000u - 8192u);
}

TEST(Synthetic, SequentialWriteShape) {
  const auto t = sequential_write(8 * 1024, 1024);
  const auto s = compute_stats(t);
  EXPECT_EQ(s.count(TraceOp::kWrite), 8u);
  EXPECT_EQ(s.bytes_written, 8u * 1024);
  EXPECT_EQ(s.bytes_read, 0u);
}

TEST(Synthetic, StridedReadIsNonSequential) {
  const auto t = strided_read(0, 4096, 1 << 20, 16);
  const auto s = compute_stats(t);
  EXPECT_EQ(s.count(TraceOp::kRead), 16u);
  EXPECT_DOUBLE_EQ(s.sequentiality, 0.0);
  EXPECT_EQ(t.records[1].offset, 0u);
  EXPECT_EQ(t.records[2].offset, 1u << 20);
}

TEST(Synthetic, StrideEqualToBlockIsSequential) {
  const auto t = strided_read(0, 4096, 4096, 8);
  EXPECT_DOUBLE_EQ(compute_stats(t).sequentiality, 1.0);
}

TEST(Synthetic, RandomReadStaysInBounds) {
  const std::uint64_t file_size = 1 << 20;
  const auto t = random_read(file_size, 4096, 200, /*seed=*/7);
  for (const auto& r : t.records) {
    if (r.op != TraceOp::kRead) continue;
    EXPECT_LE(r.offset + r.length, file_size);
    EXPECT_EQ(r.offset % 4096, 0u);
  }
}

TEST(Synthetic, RandomReadIsDeterministicPerSeed) {
  const auto a = random_read(1 << 20, 4096, 50, 3);
  const auto b = random_read(1 << 20, 4096, 50, 3);
  const auto c = random_read(1 << 20, 4096, 50, 4);
  EXPECT_EQ(a.records, b.records);
  EXPECT_NE(a.records, c.records);
}

TEST(Synthetic, SeekSequencePreservesOffsets) {
  const std::vector<std::uint64_t> offsets{66617088, 66092544, 64518912};
  const auto t = seek_sequence(offsets);
  ASSERT_EQ(t.records.size(), 5u);  // open + 3 seeks + close
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_EQ(t.records[i + 1].op, TraceOp::kSeek);
    EXPECT_EQ(t.records[i + 1].offset, offsets[i]);
    EXPECT_EQ(t.records[i + 1].length, 0u);
  }
}

TEST(Synthetic, SeekReadPairsInterleave) {
  const auto t = seek_read_sequence({{100, 10}, {5000, 20}});
  ASSERT_EQ(t.records.size(), 6u);
  EXPECT_EQ(t.records[1].op, TraceOp::kSeek);
  EXPECT_EQ(t.records[2].op, TraceOp::kRead);
  EXPECT_EQ(t.records[2].offset, 100u);
  EXPECT_EQ(t.records[2].length, 10u);
  EXPECT_EQ(t.records[3].offset, 5000u);
}

TEST(Synthetic, WallClockAdvancesByInterArrival) {
  SyntheticOptions options;
  options.inter_arrival_sec = 0.5;
  const auto t = sequential_read(2 * 4096, 4096, options);
  EXPECT_DOUBLE_EQ(t.records[1].wall_clock - t.records[0].wall_clock, 0.5);
}

TEST(Synthetic, RejectsBadBlockSizes) {
  EXPECT_THROW(sequential_read(100, 0), util::ConfigError);
  EXPECT_THROW(strided_read(0, 0, 10, 1), util::ConfigError);
  EXPECT_THROW(strided_read(0, 10, 0, 1), util::ConfigError);
  EXPECT_THROW(random_read(100, 0, 1, 1), util::ConfigError);
  EXPECT_THROW(random_read(100, 200, 1, 1), util::ConfigError);
}

TEST(TraceStats, DurationIsLastStamp) {
  SyntheticOptions options;
  options.inter_arrival_sec = 0.25;
  const auto t = sequential_read(4096, 4096, options);  // 3 records
  EXPECT_DOUBLE_EQ(compute_stats(t).duration_sec, 0.5);
}

TEST(TraceStats, MaxOffsetSeesSeeksToo) {
  const auto t = seek_sequence({42, 99999});
  EXPECT_EQ(compute_stats(t).max_offset, 99999u);
}

}  // namespace
}  // namespace clio::trace
