#include "model/program.hpp"

#include <gtest/gtest.h>

#include "model/qcrd.hpp"
#include "util/error.hpp"

namespace clio::model {
namespace {

TEST(ProgramBehavior, RejectsEmptyWorkingSets) {
  EXPECT_THROW(ProgramBehavior("p", {}), util::ConfigError);
}

TEST(ProgramBehavior, RejectsInvalidWorkingSet) {
  EXPECT_THROW(ProgramBehavior("p", {WorkingSet{2.0, 0.0, 0.5, 1}}),
               util::ConfigError);
}

TEST(ProgramBehavior, PhasesExpandTauCopies) {
  ProgramBehavior p("p", {WorkingSet{0.1, 0.0, 0.2, 3},
                          WorkingSet{0.5, 0.1, 0.1, 2}});
  const auto phases = p.phases();
  ASSERT_EQ(phases.size(), 5u);
  EXPECT_EQ(p.num_phases(), 5u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(phases[i].io_fraction, 0.1);
    EXPECT_DOUBLE_EQ(phases[i].rel_time, 0.2);
  }
  EXPECT_DOUBLE_EQ(phases[3].comm_fraction, 0.1);
}

TEST(ProgramBehavior, Figure1ExampleSumsToOne) {
  // The paper's own example: per-phase rho weighted by tau sums to ~1.
  const auto p = make_figure1_example();
  EXPECT_EQ(p.num_phases(), 5u);
  EXPECT_NEAR(p.total_rel_time(), 0.999, 1e-9);
}

TEST(ProgramBehavior, RequirementsPartitionTotalTime) {
  // One working set, one phase: T splits exactly by the fractions.
  ProgramBehavior p("p", {WorkingSet{0.3, 0.2, 1.0, 1}});
  const auto r = p.requirements(100.0);
  EXPECT_NEAR(r.disk, 30.0, 1e-9);
  EXPECT_NEAR(r.comm, 20.0, 1e-9);
  EXPECT_NEAR(r.cpu, 50.0, 1e-9);
  EXPECT_NEAR(r.total(), 100.0, 1e-9);
}

TEST(ProgramBehavior, RequirementsRejectNonPositiveTime) {
  ProgramBehavior p("p", {WorkingSet{0.3, 0.2, 1.0, 1}});
  EXPECT_THROW(static_cast<void>(p.requirements(0.0)), util::ConfigError);
  EXPECT_THROW(static_cast<void>(p.requirements(-1.0)), util::ConfigError);
}

TEST(ProgramBehavior, NormalizedScalesToUnitTime) {
  ProgramBehavior p("p", {WorkingSet{0.1, 0.0, 0.2, 2},
                          WorkingSet{0.2, 0.0, 0.1, 1}});
  EXPECT_NEAR(p.total_rel_time(), 0.5, 1e-12);
  const auto n = p.normalized();
  EXPECT_NEAR(n.total_rel_time(), 1.0, 1e-12);
  // Fractions are untouched.
  EXPECT_DOUBLE_EQ(n.working_sets()[0].io_fraction, 0.1);
}

// --- QCRD checks against the paper's numbers -----------------------------

TEST(Qcrd, StructureMatchesEquations) {
  const auto app = make_qcrd();
  EXPECT_EQ(app.name(), "QCRD");
  ASSERT_EQ(app.num_programs(), 2u);
  EXPECT_EQ(app.programs()[0].num_phases(), 24u);  // eq. 9
  EXPECT_EQ(app.programs()[1].num_phases(), 13u);  // eq. 10
  // Odd phases of program 1 are the CPU-heavy ones.
  const auto& ws1 = app.programs()[0].working_sets();
  EXPECT_DOUBLE_EQ(ws1[0].io_fraction, 0.14);
  EXPECT_DOUBLE_EQ(ws1[1].io_fraction, 0.97);
  EXPECT_DOUBLE_EQ(ws1[0].rel_time, 0.066);
  EXPECT_DOUBLE_EQ(ws1[1].rel_time, 0.0082);
  const auto& ws2 = app.programs()[1].working_sets();
  ASSERT_EQ(ws2.size(), 1u);
  EXPECT_DOUBLE_EQ(ws2[0].io_fraction, 0.92);
  EXPECT_EQ(ws2[0].phases, 13u);
}

TEST(Qcrd, Program1IsCpuBoundProgram2IsIoBound) {
  const auto app = make_qcrd();
  const auto reqs = app.per_program_requirements(1.0);
  // Program 1: CPU 12*0.86*0.066 + 12*0.03*0.0082 = 0.684
  EXPECT_NEAR(reqs[0].cpu, 12 * 0.86 * 0.066 + 12 * 0.03 * 0.0082, 1e-9);
  EXPECT_NEAR(reqs[0].disk, 12 * 0.14 * 0.066 + 12 * 0.97 * 0.0082, 1e-9);
  EXPECT_GT(reqs[0].cpu, reqs[0].disk);  // "more CPU-intensive than I/O"
  // Program 2: I/O dominates.
  EXPECT_NEAR(reqs[1].disk, 13 * 0.92 * 0.03, 1e-9);
  EXPECT_GT(reqs[1].disk, reqs[1].cpu * 5);
  // "the I/O activities in the second program is more intensive compared
  // with that in the first program" (relative share).
  const double share1 = reqs[0].disk / reqs[0].total();
  const double share2 = reqs[1].disk / reqs[1].total();
  EXPECT_GT(share2, share1);
}

TEST(Qcrd, Program1RunsLongerThanProgram2) {
  const auto app = make_qcrd();
  const auto p1 = app.programs()[0].total_rel_time();
  const auto p2 = app.programs()[1].total_rel_time();
  EXPECT_NEAR(p1, 12 * 0.066 + 12 * 0.0082, 1e-9);  // 0.8904
  EXPECT_NEAR(p2, 0.39, 1e-9);
  EXPECT_GT(p1, p2);  // paper: "the first program runs longer"
  EXPECT_NEAR(app.makespan(100.0), p1 * 100.0, 1e-9);
}

TEST(Qcrd, QcrdHasNoCommunication) {
  const auto app = make_qcrd();
  const auto r = app.requirements(10.0);
  EXPECT_DOUBLE_EQ(r.comm, 0.0);
}

TEST(Application, RejectsEmptyProgramList) {
  EXPECT_THROW(ApplicationBehavior("a", {}), util::ConfigError);
}

TEST(Application, AggregateIsSumOfPrograms) {
  const auto app = make_qcrd();
  const auto total = app.requirements(50.0);
  const auto per = app.per_program_requirements(50.0);
  EXPECT_NEAR(total.cpu, per[0].cpu + per[1].cpu, 1e-9);
  EXPECT_NEAR(total.disk, per[0].disk + per[1].disk, 1e-9);
}

}  // namespace
}  // namespace clio::model
