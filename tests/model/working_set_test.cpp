#include "model/working_set.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace clio::model {
namespace {

TEST(WorkingSet, CpuFractionIsComplement) {
  WorkingSet ws{0.3, 0.2, 0.5, 2};
  EXPECT_DOUBLE_EQ(ws.cpu_fraction(), 0.5);
}

TEST(WorkingSet, TotalRelTimeMultipliesPhases) {
  WorkingSet ws{0.0, 0.0, 0.03, 13};
  EXPECT_NEAR(ws.total_rel_time(), 0.39, 1e-12);
}

TEST(WorkingSetValidate, AcceptsPaperValues) {
  EXPECT_NO_THROW(validate(WorkingSet{0.52, 0.29, 0.287, 1}));
  EXPECT_NO_THROW(validate(WorkingSet{0.97, 0.0, 0.0082, 1}));
  EXPECT_NO_THROW(validate(WorkingSet{0.92, 0.0, 0.03, 13}));
}

TEST(WorkingSetValidate, RejectsNegativeFractions) {
  EXPECT_THROW(validate(WorkingSet{-0.1, 0.0, 0.5, 1}), util::ConfigError);
  EXPECT_THROW(validate(WorkingSet{0.0, -0.1, 0.5, 1}), util::ConfigError);
}

TEST(WorkingSetValidate, RejectsFractionsAboveOne) {
  EXPECT_THROW(validate(WorkingSet{1.1, 0.0, 0.5, 1}), util::ConfigError);
  EXPECT_THROW(validate(WorkingSet{0.0, 1.1, 0.5, 1}), util::ConfigError);
}

TEST(WorkingSetValidate, RejectsSumAboveOne) {
  EXPECT_THROW(validate(WorkingSet{0.6, 0.6, 0.5, 1}), util::ConfigError);
}

TEST(WorkingSetValidate, RejectsBadRelTime) {
  EXPECT_THROW(validate(WorkingSet{0.1, 0.1, 0.0, 1}), util::ConfigError);
  EXPECT_THROW(validate(WorkingSet{0.1, 0.1, -0.2, 1}), util::ConfigError);
  EXPECT_THROW(validate(WorkingSet{0.1, 0.1, 1.2, 1}), util::ConfigError);
}

TEST(WorkingSetValidate, RejectsZeroPhases) {
  EXPECT_THROW(validate(WorkingSet{0.1, 0.1, 0.5, 0}), util::ConfigError);
}

TEST(WorkingSetValidate, BoundaryValuesAccepted) {
  EXPECT_NO_THROW(validate(WorkingSet{1.0, 0.0, 1.0, 1}));
  EXPECT_NO_THROW(validate(WorkingSet{0.0, 1.0, 1.0, 1}));
  EXPECT_NO_THROW(validate(WorkingSet{0.5, 0.5, 0.001, 100}));
}

}  // namespace
}  // namespace clio::model
