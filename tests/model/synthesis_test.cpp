#include "model/synthesis.hpp"

#include <gtest/gtest.h>

#include "model/qcrd.hpp"
#include "util/error.hpp"

namespace clio::model {
namespace {

TEST(Synthesis, SinglePhaseSplitsByFractions) {
  ProgramBehavior p("p", {WorkingSet{0.4, 0.1, 1.0, 1}});
  SynthesisRates rates;
  rates.disk_mb_s = 10.0;     // 10 MB/s
  rates.network_mb_s = 20.0;  // 20 MB/s
  const auto work = synthesize_program(p, 2.0, rates);
  ASSERT_EQ(work.size(), 1u);
  // CPU: 0.5 fraction * 2 s = 1 s.
  EXPECT_EQ(work[0].cpu_ns, 1'000'000'000);
  // I/O: 0.4 * 2 s * 10 MB/s = 8 MB.
  EXPECT_EQ(work[0].io_bytes, 8'000'000u);
  // Comm: 0.1 * 2 s * 20 MB/s = 4 MB.
  EXPECT_EQ(work[0].comm_bytes, 4'000'000u);
}

TEST(Synthesis, WorkScalesLinearlyWithTimebase) {
  const auto p = make_figure1_example();
  const auto small = total_work(synthesize_program(p, 1.0));
  const auto large = total_work(synthesize_program(p, 10.0));
  EXPECT_NEAR(static_cast<double>(large.cpu_ns),
              10.0 * static_cast<double>(small.cpu_ns),
              static_cast<double>(small.cpu_ns) * 0.01);
  EXPECT_NEAR(static_cast<double>(large.io_bytes),
              10.0 * static_cast<double>(small.io_bytes),
              static_cast<double>(small.io_bytes) * 0.01);
}

TEST(Synthesis, QcrdPhaseCountsAndShape) {
  const auto app = make_qcrd();
  const auto w1 = synthesize_program(app.programs()[0], 10.0);
  const auto w2 = synthesize_program(app.programs()[1], 10.0);
  EXPECT_EQ(w1.size(), 24u);
  EXPECT_EQ(w2.size(), 13u);
  // Program 1 odd phases are CPU-heavy, even phases I/O-heavy.
  EXPECT_GT(w1[0].cpu_ns, static_cast<std::int64_t>(w1[0].io_bytes) / 100);
  EXPECT_GT(w1[1].io_bytes, 0u);
  // QCRD has no communication anywhere.
  for (const auto& w : w1) EXPECT_EQ(w.comm_bytes, 0u);
  for (const auto& w : w2) EXPECT_EQ(w.comm_bytes, 0u);
  // Program 2 total I/O exceeds program 1 total I/O in *share*:
  const auto t1 = total_work(w1);
  const auto t2 = total_work(w2);
  const double io_share1 =
      static_cast<double>(t1.io_bytes) /
      (static_cast<double>(t1.io_bytes) + static_cast<double>(t1.cpu_ns));
  const double io_share2 =
      static_cast<double>(t2.io_bytes) /
      (static_cast<double>(t2.io_bytes) + static_cast<double>(t2.cpu_ns));
  EXPECT_GT(io_share2, io_share1);
}

TEST(Synthesis, RejectsBadInputs) {
  const auto p = make_figure1_example();
  EXPECT_THROW(synthesize_program(p, 0.0), util::ConfigError);
  SynthesisRates bad;
  bad.disk_mb_s = 0.0;
  EXPECT_THROW(synthesize_program(p, 1.0, bad), util::ConfigError);
  bad = SynthesisRates{};
  bad.network_mb_s = -1.0;
  EXPECT_THROW(synthesize_program(p, 1.0, bad), util::ConfigError);
}

TEST(Synthesis, TotalsMatchRequirementEquations) {
  // total_work over synthesized phases must agree with eqs. 3-5 applied to
  // the model directly, converted via the same rates.
  const auto app = make_qcrd();
  const double timebase = 5.0;
  SynthesisRates rates;
  for (const auto& program : app.programs()) {
    const auto work = total_work(synthesize_program(program, timebase, rates));
    const auto req = program.requirements(timebase);
    EXPECT_NEAR(static_cast<double>(work.cpu_ns), req.cpu * 1e9,
                1e9 * 1e-6 * 24);  // rounding per phase
    EXPECT_NEAR(static_cast<double>(work.io_bytes),
                req.disk * rates.disk_mb_s * 1e6, 24.0);
  }
}

}  // namespace
}  // namespace clio::model
