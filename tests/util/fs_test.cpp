#include "util/fs.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/temp_dir.hpp"

namespace clio::util {
namespace {

TEST(Fs, WriteThenReadRoundTrips) {
  TempDir dir;
  const std::string text = "hello, managed I/O";
  write_text_file(dir.file("a.txt"), text);
  EXPECT_EQ(read_text_file(dir.file("a.txt")), text);
}

TEST(Fs, WriteTruncatesExisting) {
  TempDir dir;
  write_text_file(dir.file("a.txt"), "long original content");
  write_text_file(dir.file("a.txt"), "short");
  EXPECT_EQ(read_text_file(dir.file("a.txt")), "short");
}

TEST(Fs, ReadMissingFileThrows) {
  TempDir dir;
  EXPECT_THROW(read_file(dir.file("missing.bin")), IoError);
}

TEST(Fs, FileSizeMatches) {
  TempDir dir;
  write_text_file(dir.file("a.txt"), std::string(1234, 'x'));
  EXPECT_EQ(clio::util::file_size(dir.file("a.txt")), 1234u);
}

TEST(Fs, FileSizeMissingThrows) {
  TempDir dir;
  EXPECT_THROW(static_cast<void>(clio::util::file_size(dir.file("missing"))),
               IoError);
}

TEST(Fs, EmptyFileRoundTrips) {
  TempDir dir;
  write_file(dir.file("empty"), {});
  EXPECT_TRUE(read_file(dir.file("empty")).empty());
  EXPECT_EQ(clio::util::file_size(dir.file("empty")), 0u);
}

TEST(SampleFile, HasExactSize) {
  TempDir dir;
  create_sample_file(dir.file("sample"), 100000);
  EXPECT_EQ(clio::util::file_size(dir.file("sample")), 100000u);
}

TEST(SampleFile, ContentMatchesExpectedPattern) {
  TempDir dir;
  create_sample_file(dir.file("sample"), 4096, /*seed=*/7);
  const auto data = read_file(dir.file("sample"));
  std::vector<std::byte> expected(4096);
  expected_sample_bytes(0, expected, /*seed=*/7);
  EXPECT_EQ(std::memcmp(data.data(), expected.data(), 4096), 0);
}

TEST(SampleFile, WindowsAreOffsetIndependent) {
  // Reading bytes [100, 200) of the file must equal the generator's output
  // for offset 100 regardless of chunking during creation.
  TempDir dir;
  create_sample_file(dir.file("sample"), 3 * kMiB + 17, /*seed=*/9);
  const auto data = read_file(dir.file("sample"));
  std::vector<std::byte> expected(200);
  expected_sample_bytes(kMiB - 100, expected, /*seed=*/9);
  EXPECT_EQ(std::memcmp(data.data() + kMiB - 100, expected.data(), 200), 0);
}

TEST(SampleFile, DifferentSeedsDiffer) {
  std::vector<std::byte> a(64);
  std::vector<std::byte> b(64);
  expected_sample_bytes(0, a, 1);
  expected_sample_bytes(0, b, 2);
  EXPECT_NE(std::memcmp(a.data(), b.data(), 64), 0);
}

TEST(SampleFile, ZeroSizeProducesEmptyFile) {
  TempDir dir;
  create_sample_file(dir.file("sample"), 0);
  EXPECT_EQ(clio::util::file_size(dir.file("sample")), 0u);
}

}  // namespace
}  // namespace clio::util
