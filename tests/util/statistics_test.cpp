#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clio::util {
namespace {

TEST(Summarize, EmptySampleIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Summarize, SingleElement) {
  const std::vector<double> v{4.5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 4.5);
  EXPECT_DOUBLE_EQ(s.max, 4.5);
  EXPECT_DOUBLE_EQ(s.mean, 4.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 4.5);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
  // Sample stddev with n-1 = sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> v{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(Percentile, ExtremesReturnMinAndMax) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 3.0);
}

TEST(Percentile, RejectsOutOfRangeQ) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(static_cast<void>(percentile(v, -0.1)), ConfigError);
  EXPECT_THROW(static_cast<void>(percentile(v, 1.1)), ConfigError);
}

TEST(Geomean, KnownValues) {
  const std::vector<double> v{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(v), 4.0, 1e-12);
}

TEST(Geomean, RejectsNonPositive) {
  const std::vector<double> v{1.0, 0.0};
  EXPECT_THROW(static_cast<void>(geomean(v)), ConfigError);
  EXPECT_THROW(static_cast<void>(geomean({})), ConfigError);
}

TEST(RunningStats, MatchesBatchSummary) {
  Rng rng(7);
  std::vector<double> sample;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sample.push_back(x);
    rs.push(x);
  }
  const Summary s = summarize(sample);
  EXPECT_EQ(rs.count(), s.count);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-9);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), s.min);
  EXPECT_DOUBLE_EQ(rs.max(), s.max);
}

TEST(RunningStats, MergeEqualsSequentialPush) {
  Rng rng(11);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.exponential(2.0);
    all.push(x);
    (i % 2 == 0 ? a : b).push(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.push(3.0);
  a.merge(b);  // empty.merge(nonempty)
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  RunningStats c;
  a.merge(c);  // nonempty.merge(empty)
  EXPECT_EQ(a.count(), 1u);
}

TEST(RunningStats, Ci95ShrinksWithSampleSize) {
  Rng rng(3);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 30; ++i) small.push(rng.normal(0, 1));
  for (int i = 0; i < 3000; ++i) large.push(rng.normal(0, 1));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(RunningStats, ResetClearsState) {
  RunningStats rs;
  rs.push(1.0);
  rs.push(2.0);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
}

// Property-style sweep: mean of uniform [0, hi) converges to hi/2.
class UniformMeanProperty : public ::testing::TestWithParam<double> {};

TEST_P(UniformMeanProperty, SampleMeanNearExpectation) {
  const double hi = GetParam();
  Rng rng(static_cast<std::uint64_t>(hi * 1000) + 1);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.push(rng.uniform_double(0.0, hi));
  EXPECT_NEAR(rs.mean(), hi / 2.0, hi * 0.02);
  EXPECT_GE(rs.min(), 0.0);
  EXPECT_LT(rs.max(), hi);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UniformMeanProperty,
                         ::testing::Values(0.5, 1.0, 10.0, 1000.0));

}  // namespace
}  // namespace clio::util
