#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace clio::util {
namespace {

TEST(FormatBytes, SmallCountsAreExact) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1023), "1023 B");
}

TEST(FormatBytes, BinaryUnits) {
  EXPECT_EQ(format_bytes(1024), "1.0 KiB");
  EXPECT_EQ(format_bytes(131072), "128.0 KiB");
  EXPECT_EQ(format_bytes(kGiB), "1.0 GiB");
}

TEST(ParseBytes, PlainNumbers) {
  EXPECT_EQ(parse_bytes("0"), 0u);
  EXPECT_EQ(parse_bytes("12345"), 12345u);
}

TEST(ParseBytes, BinarySuffixes) {
  EXPECT_EQ(parse_bytes("4KiB"), 4096u);
  EXPECT_EQ(parse_bytes("4k"), 4096u);
  EXPECT_EQ(parse_bytes("16 MiB"), 16u * kMiB);
  EXPECT_EQ(parse_bytes("1GiB"), kGiB);
  EXPECT_EQ(parse_bytes("2g"), 2 * kGiB);
}

TEST(ParseBytes, DecimalSuffixes) {
  EXPECT_EQ(parse_bytes("1kb"), 1000u);
  EXPECT_EQ(parse_bytes("3MB"), 3000000u);
  EXPECT_EQ(parse_bytes("1GB"), 1000000000u);
}

TEST(ParseBytes, CaseInsensitiveAndPadded) {
  EXPECT_EQ(parse_bytes("  8 kIb  "), 8192u);
}

TEST(ParseBytes, RejectsGarbage) {
  EXPECT_THROW(static_cast<void>(parse_bytes("")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_bytes("abc")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_bytes("12XB")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_bytes("12 KiB extra")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_bytes("-5")), ParseError);
}

TEST(ParseBytes, RejectsOverflow) {
  EXPECT_THROW(static_cast<void>(parse_bytes("99999999999999999999999")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_bytes("18446744073709551615KiB")), ParseError);
}

TEST(ParseBytes, RoundTripsFormatMultiples) {
  for (std::uint64_t v : {1ULL * kKiB, 7ULL * kMiB, 3ULL * kGiB}) {
    EXPECT_EQ(parse_bytes(format_bytes(v)), v) << v;
  }
}

}  // namespace
}  // namespace clio::util
