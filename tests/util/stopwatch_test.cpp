#include "util/stopwatch.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace clio::util {
namespace {

TEST(Stopwatch, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch sw;
  const auto a = sw.elapsed_ns();
  const auto b = sw.elapsed_ns();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(Stopwatch, MeasuresSleepsApproximately) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = sw.elapsed_ms();
  EXPECT_GE(ms, 18.0);   // allow scheduler slop downward is impossible, but
  EXPECT_LT(ms, 500.0);  // and a loose sanity upper bound
}

TEST(Stopwatch, RestartResetsOrigin) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sw.restart();
  EXPECT_LT(sw.elapsed_ms(), 5.0);
}

TEST(Stopwatch, UnitConversionsAgree) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const auto ns = static_cast<double>(sw.elapsed_ns());
  // Units sampled later, so they can only be larger.
  EXPECT_GE(sw.elapsed_us() * 1e3, ns * 0.999);
  EXPECT_GE(sw.elapsed_ms() * 1e6, ns * 0.999);
  EXPECT_GE(sw.elapsed_sec() * 1e9, ns * 0.999);
}

TEST(Stopwatch, NowNsIsMonotone) {
  const auto a = Stopwatch::now_ns();
  const auto b = Stopwatch::now_ns();
  EXPECT_LE(a, b);
}

TEST(ScopedTimerMs, WritesElapsedOnDestruction) {
  double out = -1.0;
  {
    ScopedTimerMs timer(out);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    EXPECT_EQ(out, -1.0);  // not yet written
  }
  EXPECT_GE(out, 2.0);
}

TEST(SpinForNs, BurnsAtLeastRequestedTime) {
  Stopwatch sw;
  spin_for_ns(2'000'000);  // 2 ms
  EXPECT_GE(sw.elapsed_ns(), 2'000'000);
}

TEST(SpinForNs, ZeroAndNegativeReturnImmediately) {
  Stopwatch sw;
  spin_for_ns(0);
  spin_for_ns(-5);
  EXPECT_LT(sw.elapsed_ms(), 50.0);
}

}  // namespace
}  // namespace clio::util
