#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/error.hpp"
#include "util/statistics.hpp"

namespace clio::util {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformU64RejectsZeroBound) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_u64(0), ConfigError);
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng rng(9);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) seen[rng.uniform_u64(10)]++;
  for (int count : seen) EXPECT_GT(count, 700);  // ~1000 expected each
}

TEST(Rng, UniformI64InclusiveRange) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_i64(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformI64RejectsInvertedRange) {
  Rng rng(13);
  EXPECT_THROW(rng.uniform_i64(3, -3), ConfigError);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(23);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.push(rng.exponential(4.0));
  EXPECT_NEAR(rs.mean(), 4.0, 0.2);
  EXPECT_GE(rs.min(), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(23);
  EXPECT_THROW(rng.exponential(0.0), ConfigError);
  EXPECT_THROW(rng.exponential(-1.0), ConfigError);
}

TEST(Rng, NormalMomentsConverge) {
  Rng rng(29);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.push(rng.normal(5.0, 2.0));
  EXPECT_NEAR(rs.mean(), 5.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 a(0);
  SplitMix64 b(1);
  EXPECT_NE(a.next(), b.next());
}

TEST(Zipf, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), ConfigError);
}

TEST(Zipf, RejectsNegativeExponent) {
  EXPECT_THROW(ZipfDistribution(10, -0.5), ConfigError);
}

TEST(Zipf, ExponentZeroIsUniform) {
  ZipfDistribution zipf(4, 0.0);
  Rng rng(37);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[zipf(rng)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 4, n / 40);
}

// Property: with positive exponent, rank-0 items dominate, and higher
// exponents concentrate more mass on the head.
class ZipfSkewProperty : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewProperty, HeadIsMostPopular) {
  const double s = GetParam();
  ZipfDistribution zipf(100, s);
  Rng rng(41);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf(rng)]++;
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(),
            0);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99]);
}

INSTANTIATE_TEST_SUITE_P(ExponentSweep, ZipfSkewProperty,
                         ::testing::Values(0.5, 0.8, 1.0, 1.5, 2.0));

TEST(Zipf, TheoreticalHeadProbability) {
  // For n=3, s=1: weights 1, 1/2, 1/3 -> P(0) = 6/11.
  ZipfDistribution zipf(3, 1.0);
  Rng rng(43);
  int zero = 0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) zero += (zipf(rng) == 0) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(zero) / n, 6.0 / 11.0, 0.02);
}

}  // namespace
}  // namespace clio::util
