#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace clio::util {
namespace {

TEST(LatencyHistogram, StartsEmpty) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.total_ns(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
}

TEST(LatencyHistogram, CountsAndTotals) {
  LatencyHistogram h;
  h.push(100);
  h.push(200);
  h.push(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.total_ns(), 600u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 200.0);
}

TEST(LatencyHistogram, BucketAssignment) {
  LatencyHistogram h;
  h.push(0);    // bucket 0
  h.push(1);    // bucket 0
  h.push(2);    // bucket 1
  h.push(3);    // bucket 1
  h.push(4);    // bucket 2
  h.push(255);  // bucket 7
  h.push(256);  // bucket 8
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(7), 1u);
  EXPECT_EQ(h.bucket_count(8), 1u);
}

TEST(LatencyHistogram, HandlesHugeSamples) {
  LatencyHistogram h;
  h.push(UINT64_MAX);
  EXPECT_EQ(h.bucket_count(63), 1u);
  EXPECT_EQ(h.quantile_ns(0.5), UINT64_MAX);
}

TEST(LatencyHistogram, QuantileBracketsTrueValue) {
  LatencyHistogram h;
  for (std::uint64_t i = 0; i < 1000; ++i) h.push(1000);  // all in [512,1024)
  // A single-valued distribution reports that value exactly at every
  // quantile: interpolation inside the [512, 1024) bucket is clamped to
  // the observed [min, max] range (the former behaviour reported the
  // bucket's upper bound, 1024, which no sample ever reached).
  EXPECT_EQ(h.quantile_ns(0.0), 1000u);
  EXPECT_EQ(h.quantile_ns(0.5), 1000u);
  EXPECT_EQ(h.quantile_ns(0.99), 1000u);
  EXPECT_EQ(h.quantile_ns(1.0), 1000u);
}

TEST(LatencyHistogram, QuantileClampsToObservedEdges) {
  LatencyHistogram h;
  h.push(700);
  h.push(800);
  h.push(900);  // all three share bucket [512, 1024)
  EXPECT_EQ(h.quantile_ns(0.0), 700u);   // q=0 is the min, not 512
  EXPECT_EQ(h.quantile_ns(1.0), 900u);   // q=1 is the max, not 1024
  const std::uint64_t mid = h.quantile_ns(0.5);
  EXPECT_GE(mid, 700u);
  EXPECT_LE(mid, 900u);
}

TEST(LatencyHistogram, TracksMinMax) {
  LatencyHistogram h;
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  h.push(500);
  h.push(20);
  h.push(9000);
  EXPECT_EQ(h.min_ns(), 20u);
  EXPECT_EQ(h.max_ns(), 9000u);
}

TEST(LatencyHistogram, MergeCombinesMinMax) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.push(100);
  b.push(7);
  b.push(5000);
  a.merge(b);
  EXPECT_EQ(a.min_ns(), 7u);
  EXPECT_EQ(a.max_ns(), 5000u);
  LatencyHistogram empty;
  a.merge(empty);  // merging an empty histogram must not disturb min/max
  EXPECT_EQ(a.min_ns(), 7u);
  EXPECT_EQ(a.max_ns(), 5000u);
  empty.merge(a);  // merging INTO an empty one adopts the other's range
  EXPECT_EQ(empty.min_ns(), 7u);
  EXPECT_EQ(empty.max_ns(), 5000u);
}

TEST(LatencyHistogram, SnapshotCarriesQuantilesAndBuckets) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.push(100);      // bucket [64, 128)
  for (int i = 0; i < 10; ++i) h.push(1 << 20);  // bucket [2^20, 2^21)
  const LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min_ns, 100u);
  EXPECT_EQ(s.max_ns, 1u << 20);
  EXPECT_DOUBLE_EQ(s.mean_ns, h.mean_ns());
  EXPECT_LE(s.p50_ns, 128u);
  EXPECT_GE(s.p99_ns, 1u << 20);
  ASSERT_EQ(s.buckets.size(), 2u);  // only the two non-empty buckets
  EXPECT_EQ(s.buckets[0].lo_ns, 64u);
  EXPECT_EQ(s.buckets[0].hi_ns, 128u);
  EXPECT_EQ(s.buckets[0].count, 90u);
  EXPECT_EQ(s.buckets[1].count, 10u);
}

TEST(LatencyHistogram, SnapshotOfEmptyIsZeroed) {
  const LatencyHistogram::Snapshot s = LatencyHistogram{}.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99_ns, 0u);
  EXPECT_TRUE(s.buckets.empty());
}

TEST(LatencyHistogram, QuantileSeparatesModes) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.push(100);      // fast mode
  for (int i = 0; i < 10; ++i) h.push(1 << 20);  // slow mode ~1ms
  EXPECT_LE(h.quantile_ns(0.5), 256u);
  EXPECT_GE(h.quantile_ns(0.95), 1u << 20);
}

TEST(LatencyHistogram, QuantileRejectsBadQ) {
  LatencyHistogram h;
  h.push(1);
  EXPECT_THROW(static_cast<void>(h.quantile_ns(-0.1)), ConfigError);
  EXPECT_THROW(static_cast<void>(h.quantile_ns(1.5)), ConfigError);
}

TEST(LatencyHistogram, MergeAddsCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.push(10);
  b.push(20);
  b.push(30);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.total_ns(), 60u);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.push(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(2), 0u);
}

TEST(LatencyHistogram, RenderShowsNonEmptyBuckets) {
  LatencyHistogram h;
  h.push(100);
  std::ostringstream oss;
  h.render(oss);
  EXPECT_NE(oss.str().find("[64, 128) ns: 1"), std::string::npos);
}

TEST(LatencyHistogram, RenderEmpty) {
  LatencyHistogram h;
  std::ostringstream oss;
  h.render(oss);
  EXPECT_EQ(oss.str(), "(empty histogram)\n");
}

}  // namespace
}  // namespace clio::util
