#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace clio::util {
namespace {

TEST(LatencyHistogram, StartsEmpty) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.total_ns(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
}

TEST(LatencyHistogram, CountsAndTotals) {
  LatencyHistogram h;
  h.push(100);
  h.push(200);
  h.push(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.total_ns(), 600u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 200.0);
}

TEST(LatencyHistogram, BucketAssignment) {
  LatencyHistogram h;
  h.push(0);    // bucket 0
  h.push(1);    // bucket 0
  h.push(2);    // bucket 1
  h.push(3);    // bucket 1
  h.push(4);    // bucket 2
  h.push(255);  // bucket 7
  h.push(256);  // bucket 8
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(7), 1u);
  EXPECT_EQ(h.bucket_count(8), 1u);
}

TEST(LatencyHistogram, HandlesHugeSamples) {
  LatencyHistogram h;
  h.push(UINT64_MAX);
  EXPECT_EQ(h.bucket_count(63), 1u);
  EXPECT_EQ(h.quantile_ns(0.5), UINT64_MAX);
}

TEST(LatencyHistogram, QuantileBracketsTrueValue) {
  LatencyHistogram h;
  for (std::uint64_t i = 0; i < 1000; ++i) h.push(1000);  // all in [512,1024)
  EXPECT_EQ(h.quantile_ns(0.5), 1024u);
  EXPECT_EQ(h.quantile_ns(0.99), 1024u);
}

TEST(LatencyHistogram, QuantileSeparatesModes) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.push(100);      // fast mode
  for (int i = 0; i < 10; ++i) h.push(1 << 20);  // slow mode ~1ms
  EXPECT_LE(h.quantile_ns(0.5), 256u);
  EXPECT_GE(h.quantile_ns(0.95), 1u << 20);
}

TEST(LatencyHistogram, QuantileRejectsBadQ) {
  LatencyHistogram h;
  h.push(1);
  EXPECT_THROW(static_cast<void>(h.quantile_ns(-0.1)), ConfigError);
  EXPECT_THROW(static_cast<void>(h.quantile_ns(1.5)), ConfigError);
}

TEST(LatencyHistogram, MergeAddsCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.push(10);
  b.push(20);
  b.push(30);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.total_ns(), 60u);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.push(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(2), 0u);
}

TEST(LatencyHistogram, RenderShowsNonEmptyBuckets) {
  LatencyHistogram h;
  h.push(100);
  std::ostringstream oss;
  h.render(oss);
  EXPECT_NE(oss.str().find("[64, 128) ns: 1"), std::string::npos);
}

TEST(LatencyHistogram, RenderEmpty) {
  LatencyHistogram h;
  std::ostringstream oss;
  h.render(oss);
  EXPECT_EQ(oss.str(), "(empty histogram)\n");
}

}  // namespace
}  // namespace clio::util
