#include "util/temp_dir.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace clio::util {
namespace {

namespace fs = std::filesystem;

TEST(TempDir, CreatesDirectoryOnConstruction) {
  TempDir dir("clio-test");
  EXPECT_TRUE(fs::is_directory(dir.path()));
  EXPECT_NE(dir.path().string().find("clio-test"), std::string::npos);
}

TEST(TempDir, RemovesDirectoryOnDestruction) {
  fs::path path;
  {
    TempDir dir;
    path = dir.path();
    std::ofstream(dir.file("payload.bin")) << "data";
    EXPECT_TRUE(fs::exists(path / "payload.bin"));
  }
  EXPECT_FALSE(fs::exists(path));
}

TEST(TempDir, DistinctInstancesGetDistinctPaths) {
  TempDir a;
  TempDir b;
  EXPECT_NE(a.path(), b.path());
}

TEST(TempDir, FileHelperJoinsPath) {
  TempDir dir;
  EXPECT_EQ(dir.file("x.trace"), dir.path() / "x.trace");
}

TEST(TempDir, SubdirCreatesNestedDirectory) {
  TempDir dir;
  const auto sub = dir.subdir("panels");
  EXPECT_TRUE(fs::is_directory(sub));
  EXPECT_EQ(sub.parent_path(), dir.path());
}

TEST(TempDir, ReleasePreventsRemoval) {
  fs::path path;
  {
    TempDir dir;
    path = dir.path();
    dir.release();
  }
  EXPECT_TRUE(fs::exists(path));
  fs::remove_all(path);  // manual cleanup
}

TEST(TempDir, MoveTransfersOwnership) {
  fs::path path;
  {
    TempDir a;
    path = a.path();
    TempDir b = std::move(a);
    EXPECT_EQ(b.path(), path);
    // `a` must not remove the directory when it dies first.
  }
  EXPECT_FALSE(fs::exists(path));
}

TEST(TempDir, MoveAssignmentCleansUpOldTarget) {
  TempDir a;
  const fs::path a_path = a.path();
  TempDir b;
  const fs::path b_path = b.path();
  b = std::move(a);
  EXPECT_FALSE(fs::exists(b_path));  // b's original dir removed on assign
  EXPECT_TRUE(fs::exists(a_path));
  EXPECT_EQ(b.path(), a_path);
}

}  // namespace
}  // namespace clio::util
