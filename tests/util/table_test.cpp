#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace clio::util {
namespace {

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), ConfigError);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

TEST(TextTable, RendersHeadersAndRows) {
  TextTable t({"Appl. name", "Read time (ms)"});
  t.add_row({"Data Mining", "0.0025"});
  t.add_row({"Titan", "0.002"});
  std::ostringstream oss;
  t.render(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("Appl. name"), std::string::npos);
  EXPECT_NE(out.find("Data Mining"), std::string::npos);
  EXPECT_NE(out.find("0.0025"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(TextTable, ColumnsAlignAcrossRows) {
  TextTable t({"x", "y"});
  t.add_row({"short", "1"});
  t.add_row({"much-longer-cell", "2"});
  std::ostringstream oss;
  t.render(oss);
  // All lines between the rules should have the same length.
  std::istringstream in(oss.str());
  std::string line;
  std::size_t expected = 0;
  while (std::getline(in, line)) {
    if (expected == 0) expected = line.size();
    EXPECT_EQ(line.size(), expected);
  }
}

TEST(TextTable, CsvRoundTripsSimpleCells) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream oss;
  t.render_csv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(TextTable, CsvQuotesSpecialCells) {
  TextTable t({"name"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream oss;
  t.render_csv(oss);
  EXPECT_NE(oss.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(oss.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(CsvEscape, PassesPlainCells) { EXPECT_EQ(csv_escape("plain"), "plain"); }

TEST(CsvEscape, EscapesNewlines) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(FormatMs, TinyValuesUseScientific) {
  EXPECT_EQ(format_ms(7.33e-5), "7.33E-05");
  EXPECT_EQ(format_ms(9.43e-5), "9.43E-05");
}

TEST(FormatMs, SubMillisecondUsesFourDecimals) {
  EXPECT_EQ(format_ms(0.0025), "0.0025");
  EXPECT_EQ(format_ms(0.0072), "0.0072");
}

TEST(FormatMs, LargeValuesUseFixed) {
  EXPECT_EQ(format_ms(2.1175), "2.118");
  EXPECT_EQ(format_ms(9.0181), "9.018");
}

TEST(FormatMs, ZeroIsPlain) { EXPECT_EQ(format_ms(0.0), "0.0000"); }

TEST(FormatFixed, RespectsDecimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.0, 0), "3");
}

TEST(FormatFixed, RejectsBadDecimals) {
  EXPECT_THROW(format_fixed(1.0, -1), ConfigError);
  EXPECT_THROW(format_fixed(1.0, 99), ConfigError);
}

}  // namespace
}  // namespace clio::util
