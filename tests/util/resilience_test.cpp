// Unit coverage for the resilience primitives: deadlines (unset semantics,
// ambient scoping, nesting), seeded backoff (determinism, jitter bounds,
// exhaustion) and the circuit breaker state machine (trip, cooldown,
// half-open probes, re-trip, close).
#include "util/resilience.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace clio::util {
namespace {

using namespace std::chrono_literals;

TEST(Deadline, DefaultIsUnsetAndNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.set());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), std::chrono::nanoseconds::max());
}

TEST(Deadline, AfterExpiresOnceElapsed) {
  const Deadline d = Deadline::after(1ms);
  EXPECT_TRUE(d.set());
  EXPECT_FALSE(d.expired());
  std::this_thread::sleep_for(3ms);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), std::chrono::nanoseconds::zero());
}

TEST(Deadline, EarlierPicksTheTighterBudget) {
  const Deadline never;
  const Deadline soon = Deadline::after_ms(1);
  const Deadline late = Deadline::after_ms(10'000);
  EXPECT_FALSE(Deadline::earlier(never, never).set());
  // An unset deadline always loses.
  EXPECT_LE(Deadline::earlier(never, soon).remaining(), 2ms);
  EXPECT_LE(Deadline::earlier(soon, never).remaining(), 2ms);
  EXPECT_LE(Deadline::earlier(soon, late).remaining(), 2ms);
  EXPECT_GT(Deadline::earlier(late, never).remaining(), 1s);
}

TEST(DeadlineScope, InstallsAndRestoresTheAmbientDeadline) {
  EXPECT_FALSE(DeadlineScope::current().set());
  {
    DeadlineScope scope(Deadline::after_ms(10'000));
    EXPECT_TRUE(DeadlineScope::current().set());
  }
  EXPECT_FALSE(DeadlineScope::current().set());
}

TEST(DeadlineScope, InnerScopeNeverExtendsTheOuterBudget) {
  DeadlineScope outer(Deadline::after_ms(5));
  {
    // Looser inner budget: the outer one must still win.
    DeadlineScope inner(Deadline::after_ms(60'000));
    EXPECT_LT(DeadlineScope::current().remaining(), 1s);
  }
  {
    // Tighter inner budget wins while active.
    DeadlineScope inner(Deadline::after(1ms));
    EXPECT_LE(DeadlineScope::current().remaining(), 2ms);
  }
}

TEST(DeadlineScope, IsPerThread) {
  DeadlineScope scope(Deadline::after_ms(10'000));
  bool other_thread_set = true;
  std::thread probe([&] { other_thread_set = DeadlineScope::current().set(); });
  probe.join();
  EXPECT_FALSE(other_thread_set);
  EXPECT_TRUE(DeadlineScope::current().set());
}

TEST(Backoff, SameSeedReplaysTheSameSchedule) {
  BackoffPolicy policy;
  policy.max_retries = 5;
  Backoff a(policy, 42);
  Backoff b(policy, 42);
  Backoff c(policy, 43);
  bool any_differs = false;
  while (!a.exhausted()) {
    const auto da = a.next_delay();
    EXPECT_EQ(da, b.next_delay());
    if (da != c.next_delay()) any_differs = true;
  }
  EXPECT_TRUE(any_differs);  // different seed, different jitter
}

TEST(Backoff, DelaysAreEqualJitteredAndCapped) {
  BackoffPolicy policy;
  policy.max_retries = 10;
  policy.base_delay_us = 100;
  policy.max_delay_us = 800;
  policy.multiplier = 2.0;
  Backoff backoff(policy, 7);
  for (std::uint32_t k = 1; !backoff.exhausted(); ++k) {
    const double ceiling =
        std::min<double>(policy.max_delay_us,
                         policy.base_delay_us * std::pow(2.0, k - 1));
    const auto delay = backoff.next_delay().count();
    EXPECT_GE(delay, static_cast<long>(ceiling / 2.0));
    EXPECT_LE(delay, static_cast<long>(ceiling));
  }
  EXPECT_EQ(backoff.retries_used(), 10u);
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailuresOnly) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  CircuitBreaker breaker(cfg);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // A success in between resets the streak.
  ASSERT_TRUE(breaker.try_acquire());
  EXPECT_FALSE(breaker.record_failure());
  ASSERT_TRUE(breaker.try_acquire());
  EXPECT_FALSE(breaker.record_failure());
  ASSERT_TRUE(breaker.try_acquire());
  breaker.record_success();
  ASSERT_TRUE(breaker.try_acquire());
  EXPECT_FALSE(breaker.record_failure());
  ASSERT_TRUE(breaker.try_acquire());
  EXPECT_FALSE(breaker.record_failure());
  ASSERT_TRUE(breaker.try_acquire());
  EXPECT_TRUE(breaker.record_failure());  // third consecutive: trips
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.stats().trips, 1u);
  EXPECT_GT(breaker.retry_after_ms(), 0.0);
}

TEST(CircuitBreaker, OpenFastFailsUntilCooldownThenAdmitsOneProbe) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_ms = 20;
  cfg.half_open_successes = 1;
  CircuitBreaker breaker(cfg);
  ASSERT_TRUE(breaker.try_acquire());
  EXPECT_TRUE(breaker.record_failure());
  EXPECT_FALSE(breaker.try_acquire());  // open: fast-fail
  EXPECT_FALSE(breaker.try_acquire());
  EXPECT_EQ(breaker.stats().fast_fails, 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.open_cooldown_ms) +
                              5ms);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.try_acquire());   // the single probe
  EXPECT_FALSE(breaker.try_acquire());  // a second concurrent probe: refused
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().probes, 1u);
  EXPECT_EQ(breaker.retry_after_ms(), 0.0);
}

TEST(CircuitBreaker, FailedProbeReopensWithAFreshTrip) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_ms = 10;
  CircuitBreaker breaker(cfg);
  ASSERT_TRUE(breaker.try_acquire());
  EXPECT_TRUE(breaker.record_failure());
  std::this_thread::sleep_for(20ms);
  ASSERT_TRUE(breaker.try_acquire());
  EXPECT_TRUE(breaker.record_failure());  // probe fails: re-trip
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.stats().trips, 2u);
  EXPECT_FALSE(breaker.try_acquire());
}

TEST(CircuitBreaker, HalfOpenRequiresConfiguredSuccessesToClose) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_ms = 10;
  cfg.half_open_successes = 2;
  CircuitBreaker breaker(cfg);
  ASSERT_TRUE(breaker.try_acquire());
  EXPECT_TRUE(breaker.record_failure());
  std::this_thread::sleep_for(20ms);
  ASSERT_TRUE(breaker.try_acquire());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);  // 1 of 2
  ASSERT_TRUE(breaker.try_acquire());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, ResetReturnsToClosedWithClearedCounters) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  CircuitBreaker breaker(cfg);
  ASSERT_TRUE(breaker.try_acquire());
  EXPECT_TRUE(breaker.record_failure());
  breaker.reset();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().trips, 0u);
  EXPECT_TRUE(breaker.try_acquire());
  breaker.record_success();
}

TEST(CircuitBreaker, StateNamesAreStable) {
  EXPECT_EQ(circuit_state_name(CircuitBreaker::State::kClosed), "closed");
  EXPECT_EQ(circuit_state_name(CircuitBreaker::State::kOpen), "open");
  EXPECT_EQ(circuit_state_name(CircuitBreaker::State::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace clio::util
