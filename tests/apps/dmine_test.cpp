#include "apps/dmine/apriori.hpp"

#include <gtest/gtest.h>

#include "io/file_store.hpp"
#include "trace/stats.hpp"
#include "util/error.hpp"
#include "util/temp_dir.hpp"

namespace clio::apps::dmine {
namespace {

class DmineTest : public ::testing::Test {
 protected:
  DmineTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}),
        capture_(fs_, "sample.bin") {}

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
  TraceCapturingFs capture_;
};

StoreConfig small_config() {
  StoreConfig config;
  config.num_transactions = 500;
  config.num_items = 50;
  config.mean_basket = 6.0;
  config.planted = {{1, 2, 3}, {10, 11}};
  config.plant_probability = 0.4;
  config.seed = 7;
  return config;
}

TEST_F(DmineTest, GeneratorRejectsBadConfig) {
  StoreConfig bad = small_config();
  bad.num_transactions = 0;
  EXPECT_THROW(TransactionStore::generate(capture_, "t.db", bad),
               util::ConfigError);
  bad = small_config();
  bad.planted = {{999}};
  EXPECT_THROW(TransactionStore::generate(capture_, "t.db", bad),
               util::ConfigError);
}

TEST_F(DmineTest, StoreRoundTripsHeaderAndScan) {
  TransactionStore::generate(capture_, "t.db", small_config());
  TransactionStore store(capture_, "t.db");
  EXPECT_EQ(store.num_transactions(), 500u);
  EXPECT_EQ(store.num_items(), 50u);
  std::size_t seen = 0;
  std::size_t total_items = 0;
  store.scan([&](const std::vector<std::uint32_t>& basket) {
    ++seen;
    total_items += basket.size();
    for (std::size_t i = 1; i < basket.size(); ++i) {
      EXPECT_LT(basket[i - 1], basket[i]);  // sorted, unique
    }
    for (auto item : basket) EXPECT_LT(item, 50u);
  });
  EXPECT_EQ(seen, 500u);
  EXPECT_GT(total_items, 500u);  // baskets average several items
}

TEST_F(DmineTest, PlantedItemsetsAreFound) {
  TransactionStore::generate(capture_, "t.db", small_config());
  TransactionStore store(capture_, "t.db");
  Apriori miner(MiningConfig{.min_support = 0.08,
                             .min_confidence = 0.5,
                             .max_itemset_size = 3});
  const auto result = miner.run(store);
  // The planted triple {1,2,3} appears in ~20% of baskets (0.4 * 0.5).
  EXPECT_NE(result.find({1, 2, 3}), nullptr);
  EXPECT_NE(result.find({10, 11}), nullptr);
  EXPECT_NE(result.find({1, 2}), nullptr);  // subsets frequent too
  EXPECT_NE(result.find({1}), nullptr);
}

TEST_F(DmineTest, SupportIsDownwardClosed) {
  TransactionStore::generate(capture_, "t.db", small_config());
  TransactionStore store(capture_, "t.db");
  Apriori miner(MiningConfig{.min_support = 0.05,
                             .min_confidence = 0.5,
                             .max_itemset_size = 3});
  const auto result = miner.run(store);
  // Every frequent k-set's (k-1)-subsets are frequent with >= support.
  for (std::size_t level = 1; level < result.frequent.size(); ++level) {
    for (const auto& set : result.frequent[level]) {
      for (std::size_t skip = 0; skip < set.items.size(); ++skip) {
        std::vector<std::uint32_t> subset;
        for (std::size_t i = 0; i < set.items.size(); ++i) {
          if (i != skip) subset.push_back(set.items[i]);
        }
        const ItemSet* sub = result.find(subset);
        ASSERT_NE(sub, nullptr);
        EXPECT_GE(sub->support, set.support);
      }
    }
  }
}

TEST_F(DmineTest, RulesMeetConfidenceBar) {
  TransactionStore::generate(capture_, "t.db", small_config());
  TransactionStore store(capture_, "t.db");
  Apriori miner(MiningConfig{.min_support = 0.08,
                             .min_confidence = 0.7,
                             .max_itemset_size = 3});
  const auto result = miner.run(store);
  EXPECT_FALSE(result.rules.empty());
  for (const auto& rule : result.rules) {
    EXPECT_GE(rule.confidence, 0.7);
    EXPECT_LE(rule.confidence, 1.0 + 1e-12);
    EXPECT_GT(rule.support_fraction, 0.0);
  }
}

TEST_F(DmineTest, SupportCountsAreExact) {
  // Verify one itemset's support against a brute-force rescan.
  TransactionStore::generate(capture_, "t.db", small_config());
  TransactionStore store(capture_, "t.db");
  Apriori miner(MiningConfig{.min_support = 0.08,
                             .min_confidence = 0.5,
                             .max_itemset_size = 2});
  const auto result = miner.run(store);
  const ItemSet* pair = result.find({10, 11});
  ASSERT_NE(pair, nullptr);
  std::uint32_t manual = 0;
  store.scan([&](const std::vector<std::uint32_t>& basket) {
    const bool has10 =
        std::find(basket.begin(), basket.end(), 10u) != basket.end();
    const bool has11 =
        std::find(basket.begin(), basket.end(), 11u) != basket.end();
    if (has10 && has11) ++manual;
  });
  EXPECT_EQ(pair->support, manual);
}

TEST_F(DmineTest, EachPassIsOneSequentialScan) {
  // A database big enough that every scan spans many read blocks, so the
  // sequential character of the workload dominates pass boundaries.
  StoreConfig config = small_config();
  config.num_transactions = 20000;
  TransactionStore::generate(capture_, "t.db", config);
  TransactionStore store(capture_, "t.db");
  Apriori miner(MiningConfig{.min_support = 0.08,
                             .min_confidence = 0.5,
                             .max_itemset_size = 3});
  const auto result = miner.run(store);
  const auto t = capture_.finish();
  EXPECT_NO_THROW(validate(t));
  const auto stats = trace::compute_stats(t);
  // generate (1 open) + header probe (1) + passes (1 each).
  EXPECT_EQ(stats.count(trace::TraceOp::kOpen), 2u + result.passes);
  // Mining reads are sequential (the Table 1 workload shape).
  EXPECT_GT(stats.sequentiality, 0.7);
}

TEST_F(DmineTest, HigherSupportPrunesMore) {
  TransactionStore::generate(capture_, "t.db", small_config());
  TransactionStore store(capture_, "t.db");
  const auto loose =
      Apriori(MiningConfig{.min_support = 0.05,
                           .min_confidence = 0.5,
                           .max_itemset_size = 2})
          .run(store);
  const auto tight =
      Apriori(MiningConfig{.min_support = 0.30,
                           .min_confidence = 0.5,
                           .max_itemset_size = 2})
          .run(store);
  EXPECT_GE(loose.frequent[0].size(), tight.frequent[0].size());
}

TEST_F(DmineTest, MinerRejectsBadConfig) {
  EXPECT_THROW(Apriori(MiningConfig{.min_support = 0.0}), util::ConfigError);
  EXPECT_THROW(Apriori(MiningConfig{.min_support = 1.5}), util::ConfigError);
  EXPECT_THROW(Apriori(MiningConfig{.min_support = 0.1,
                                    .min_confidence = -0.1}),
               util::ConfigError);
  EXPECT_THROW(Apriori(MiningConfig{.min_support = 0.1,
                                    .min_confidence = 0.5,
                                    .max_itemset_size = 0}),
               util::ConfigError);
}

}  // namespace
}  // namespace clio::apps::dmine
