#include "apps/cholesky/numeric.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "io/file_store.hpp"
#include "trace/stats.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"

namespace clio::apps::cholesky {
namespace {

// ------------------------------ matrix ------------------------------------

TEST(SparseMatrix, MakeSpdIsStructurallyValid) {
  const auto a = make_spd(50, 3, 7);
  EXPECT_NO_THROW(validate(a));
  EXPECT_EQ(a.n, 50u);
  // Diagonal dominance by construction.
  for (std::size_t j = 0; j < a.n; ++j) {
    double off = 0.0;
    for (std::size_t p = a.col_ptr[j] + 1; p < a.col_ptr[j + 1]; ++p) {
      off += std::fabs(a.values[p]);
    }
    EXPECT_GT(a.at(j, j), off);
  }
}

TEST(SparseMatrix, AtReadsEntries) {
  const auto a = make_spd(10, 1, 3);
  EXPECT_GT(a.at(0, 0), 0.0);
  EXPECT_NE(a.at(1, 0), 0.0);  // first subdiagonal always present
}

TEST(SparseMatrix, DenseExpansionIsSymmetric) {
  const auto a = make_spd(12, 2, 5);
  const auto dense = to_dense_symmetric(a);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      EXPECT_DOUBLE_EQ(dense[j * 12 + i], dense[i * 12 + j]);
    }
  }
}

TEST(SparseMatrix, MatvecMatchesDense) {
  const auto a = make_spd(20, 2, 9);
  const auto dense = to_dense_symmetric(a);
  util::Rng rng(4);
  std::vector<double> x(20);
  for (auto& v : x) v = rng.uniform_double(-1.0, 1.0);
  const auto y = symmetric_matvec(a, x);
  for (std::size_t i = 0; i < 20; ++i) {
    double expect = 0.0;
    for (std::size_t j = 0; j < 20; ++j) expect += dense[j * 20 + i] * x[j];
    EXPECT_NEAR(y[i], expect, 1e-12);
  }
}

TEST(SparseMatrix, ValidateCatchesCorruption) {
  auto a = make_spd(6, 1, 1);
  auto broken = a;
  broken.row_idx[1] = 0;  // duplicate/unsorted
  EXPECT_THROW(validate(broken), util::ConfigError);
  broken = a;
  broken.col_ptr[3] = broken.col_ptr[4] + 1;
  EXPECT_THROW(validate(broken), util::ConfigError);
}

// ------------------------------ etree -------------------------------------

TEST(Etree, ChainMatrixGivesChainTree) {
  // Tridiagonal: parent[j] = j+1.
  const auto a = make_spd(8, 0, 2);
  const auto parent = elimination_tree(a);
  for (std::size_t j = 0; j + 1 < 8; ++j) EXPECT_EQ(parent[j], j + 1);
  EXPECT_EQ(parent[7], kNoParent);
}

TEST(Etree, ParentsAlwaysLarger) {
  const auto a = make_spd(64, 4, 13);
  const auto parent = elimination_tree(a);
  for (std::size_t j = 0; j < a.n; ++j) {
    if (parent[j] != kNoParent) {
      EXPECT_GT(parent[j], j);
    }
  }
}

TEST(Etree, PostorderVisitsChildrenFirst) {
  const auto a = make_spd(40, 3, 17);
  const auto parent = elimination_tree(a);
  const auto order = postorder(parent);
  ASSERT_EQ(order.size(), 40u);
  std::vector<std::size_t> position(40);
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (std::size_t j = 0; j < 40; ++j) {
    if (parent[j] != kNoParent) {
      EXPECT_LT(position[j], position[parent[j]]);
    }
  }
  // It is a permutation.
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::size_t> expect(40);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(sorted, expect);
}

TEST(Etree, ColumnCountsMatchSymbolic) {
  const auto a = make_spd(48, 3, 19);
  const auto parent = elimination_tree(a);
  const auto counts = column_counts(a, parent);
  const auto symbolic = symbolic_factor(a);
  for (std::size_t j = 0; j < a.n; ++j) {
    EXPECT_EQ(counts[j], symbolic.col_rows[j].size()) << "col " << j;
  }
}

// ------------------------------ symbolic ----------------------------------

TEST(Symbolic, PatternContainsMatrixPattern) {
  const auto a = make_spd(32, 2, 23);
  const auto s = symbolic_factor(a);
  for (std::size_t j = 0; j < a.n; ++j) {
    for (std::size_t p = a.col_ptr[j]; p < a.col_ptr[j + 1]; ++p) {
      const auto& rows = s.col_rows[j];
      EXPECT_TRUE(std::binary_search(rows.begin(), rows.end(),
                                     a.row_idx[p]))
          << "A(" << a.row_idx[p] << "," << j << ") missing from L";
    }
  }
}

TEST(Symbolic, OffsetsArePackedAndSized) {
  const auto a = make_spd(24, 2, 29);
  const auto s = symbolic_factor(a);
  std::uint64_t expect = 0;
  for (std::size_t j = 0; j < a.n; ++j) {
    EXPECT_EQ(s.col_offset[j], expect);
    expect += s.column_bytes(j);
  }
  EXPECT_EQ(s.file_bytes, expect);
  EXPECT_EQ(s.nnz * sizeof(double), s.file_bytes);
}

TEST(Symbolic, RowColsMirrorsColRows) {
  const auto a = make_spd(24, 3, 31);
  const auto s = symbolic_factor(a);
  for (std::size_t j = 0; j < a.n; ++j) {
    for (std::size_t i : s.col_rows[j]) {
      if (i == j) continue;
      const auto& cols = s.row_cols[i];
      EXPECT_TRUE(std::binary_search(cols.begin(), cols.end(), j));
    }
  }
}

// ------------------------------ numeric -----------------------------------

class CholeskyTest : public ::testing::Test {
 protected:
  CholeskyTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}),
        capture_(fs_, "sample.bin") {}

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
  TraceCapturingFs capture_;
};

TEST_F(CholeskyTest, FactorizationResidualIsTiny) {
  const auto a = make_spd(40, 3, 37);
  const auto s = symbolic_factor(a);
  OocCholesky chol(a, s);
  const auto stats = chol.factor(capture_, "factor.bin");
  EXPECT_EQ(stats.columns_written, 40u);
  const auto l = chol.load_factor(capture_, "factor.bin");
  EXPECT_LT(cholesky_residual(a, l), 1e-10);
}

TEST_F(CholeskyTest, SolveRecoversKnownSolution) {
  const auto a = make_spd(32, 2, 41);
  const auto s = symbolic_factor(a);
  OocCholesky chol(a, s);
  chol.factor(capture_, "factor.bin");
  const auto l = chol.load_factor(capture_, "factor.bin");

  util::Rng rng(6);
  std::vector<double> x_true(32);
  for (auto& v : x_true) v = rng.uniform_double(-3.0, 3.0);
  const auto b = symmetric_matvec(a, x_true);
  const auto x = cholesky_solve(l, b);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

// Property sweep: density affects fill-in but never correctness.
class CholeskyDensity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskyDensity, CorrectAcrossDensities) {
  util::TempDir dir;
  io::ManagedFileSystem fs(std::make_unique<io::RealFileStore>(dir.path()),
                           io::ManagedFsOptions{});
  TraceCapturingFs capture(fs, "sample.bin");
  const auto a = make_spd(36, GetParam(), 43 + GetParam());
  const auto s = symbolic_factor(a);
  OocCholesky chol(a, s);
  chol.factor(capture, "factor.bin");
  const auto l = chol.load_factor(capture, "factor.bin");
  EXPECT_LT(cholesky_residual(a, l), 1e-10);
  // Fill-in: L has at least the pattern of A.
  EXPECT_GE(s.nnz, a.nnz());
}

INSTANTIATE_TEST_SUITE_P(Densities, CholeskyDensity,
                         ::testing::Values(0, 1, 2, 4, 8));

TEST_F(CholeskyTest, RejectsNonPositiveDefinite) {
  auto a = make_spd(10, 1, 47);
  a.values[a.col_ptr[5]] = -4.0;  // poison a diagonal
  const auto s = symbolic_factor(a);
  OocCholesky chol(a, s);
  EXPECT_THROW(chol.factor(capture_, "bad.bin"), util::ExecutionError);
}

TEST_F(CholeskyTest, TraceHasIrregularSeekReadPattern) {
  const auto a = make_spd(48, 3, 53);
  const auto s = symbolic_factor(a);
  OocCholesky chol(a, s);
  const auto stats = chol.factor(capture_, "factor.bin");
  const auto t = capture_.finish();
  EXPECT_NO_THROW(validate(t));
  // Table 4's signature: many seek+read pairs with varying sizes.
  std::set<std::uint64_t> read_sizes;
  std::size_t reads = 0;
  for (const auto& r : t.records) {
    if (r.op == trace::TraceOp::kRead && r.length > 0) {
      read_sizes.insert(r.length);
      ++reads;
    }
  }
  EXPECT_EQ(reads, stats.column_reads);
  EXPECT_GT(read_sizes.size(), 3u);  // genuinely irregular request sizes
}

TEST_F(CholeskyTest, StatsAccountBytes) {
  const auto a = make_spd(30, 2, 59);
  const auto s = symbolic_factor(a);
  OocCholesky chol(a, s);
  const auto stats = chol.factor(capture_, "factor.bin");
  EXPECT_EQ(stats.bytes_written, s.file_bytes);
  EXPECT_GT(stats.flops, 0u);
}

}  // namespace
}  // namespace clio::apps::cholesky
