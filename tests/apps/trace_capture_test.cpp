#include "apps/trace_capture.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "io/file_store.hpp"
#include "trace/stats.hpp"
#include "util/temp_dir.hpp"

namespace clio::apps {
namespace {

class CaptureTest : public ::testing::Test {
 protected:
  CaptureTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}),
        capture_(fs_, "sample.bin") {}

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
  TraceCapturingFs capture_;
};

std::span<const std::byte> as_bytes(const std::string& s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

TEST_F(CaptureTest, RecordsFullLifecycle) {
  auto f = capture_.open("a.bin", io::OpenMode::kCreate);
  f.write(as_bytes("0123456789"));
  f.seek(2);
  std::vector<std::byte> buf(4);
  f.read(buf);
  f.close();
  const auto t = capture_.finish();
  ASSERT_EQ(t.records.size(), 5u);
  EXPECT_EQ(t.records[0].op, trace::TraceOp::kOpen);
  EXPECT_EQ(t.records[1].op, trace::TraceOp::kWrite);
  EXPECT_EQ(t.records[1].offset, 0u);
  EXPECT_EQ(t.records[1].length, 10u);
  EXPECT_EQ(t.records[2].op, trace::TraceOp::kSeek);
  EXPECT_EQ(t.records[2].offset, 2u);
  EXPECT_EQ(t.records[3].op, trace::TraceOp::kRead);
  EXPECT_EQ(t.records[3].offset, 2u);
  EXPECT_EQ(t.records[3].length, 4u);
  EXPECT_EQ(t.records[4].op, trace::TraceOp::kClose);
  EXPECT_EQ(t.header.sample_file, "sample.bin");
}

TEST_F(CaptureTest, AssignsDistinctFids) {
  auto a = capture_.open("a.bin", io::OpenMode::kCreate);
  auto b = capture_.open("b.bin", io::OpenMode::kCreate);
  a.close();
  b.close();
  auto c = capture_.open("a.bin", io::OpenMode::kCreate);  // same fid as a
  c.close();
  EXPECT_EQ(capture_.num_files(), 2u);
  const auto t = capture_.finish();
  EXPECT_EQ(t.header.num_files, 2u);
  EXPECT_EQ(t.records[0].fid, t.records[4].fid);  // a.bin both times
  EXPECT_NE(t.records[0].fid, t.records[1].fid);
}

TEST_F(CaptureTest, TracksPids) {
  auto a = capture_.open("a.bin", io::OpenMode::kCreate, /*pid=*/3);
  a.close();
  const auto t = capture_.finish();
  EXPECT_EQ(t.header.num_processes, 4u);
  EXPECT_EQ(t.records[0].pid, 3u);
}

TEST_F(CaptureTest, DestructorClosesAndRecords) {
  {
    auto f = capture_.open("d.bin", io::OpenMode::kCreate);
    f.write(as_bytes("x"));
  }
  const auto t = capture_.finish();
  EXPECT_EQ(t.records.back().op, trace::TraceOp::kClose);
}

TEST_F(CaptureTest, CapturedTraceValidates) {
  auto f = capture_.open("v.bin", io::OpenMode::kCreate);
  f.write(as_bytes("abc"));
  f.close();
  EXPECT_NO_THROW(validate(capture_.finish()));
}

TEST_F(CaptureTest, ConcurrentRecordingIsSafe) {
  // Four threads each write their own file through the shared capture.
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      auto f = capture_.open("w" + std::to_string(w) + ".bin",
                             io::OpenMode::kCreate,
                             static_cast<std::uint32_t>(w));
      for (int i = 0; i < 50; ++i) f.write(as_bytes("payload"));
      f.close();
    });
  }
  for (auto& t : threads) t.join();
  const auto t = capture_.finish();
  EXPECT_NO_THROW(validate(t));
  const auto stats = trace::compute_stats(t);
  EXPECT_EQ(stats.count(trace::TraceOp::kWrite), 200u);
  EXPECT_EQ(stats.count(trace::TraceOp::kOpen), 4u);
  EXPECT_EQ(t.header.num_processes, 4u);
}

}  // namespace
}  // namespace clio::apps
