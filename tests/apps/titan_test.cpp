#include "apps/titan/titan_db.hpp"

#include <gtest/gtest.h>

#include "io/file_store.hpp"
#include "trace/stats.hpp"
#include "util/error.hpp"
#include "util/temp_dir.hpp"

namespace clio::apps::titan {
namespace {

// ------------------------------ quadtree ----------------------------------

TEST(Quadtree, FullRangeReturnsAllTiles) {
  TileQuadtree tree(4, 4);
  const auto tiles = tree.query(TileRect{0, 0, 4, 4});
  EXPECT_EQ(tiles.size(), 16u);
}

TEST(Quadtree, SingleTileQuery) {
  TileQuadtree tree(8, 8);
  const auto tiles = tree.query(TileRect{3, 5, 4, 6});
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0], (TileId{3, 5}));
}

TEST(Quadtree, RectangleQueryReturnsExactCover) {
  TileQuadtree tree(8, 8);
  const auto tiles = tree.query(TileRect{1, 2, 4, 5});
  EXPECT_EQ(tiles.size(), 9u);  // 3x3 block
  for (const auto& t : tiles) {
    EXPECT_GE(t.tx, 1u);
    EXPECT_LT(t.tx, 4u);
    EXPECT_GE(t.ty, 2u);
    EXPECT_LT(t.ty, 5u);
  }
}

TEST(Quadtree, EmptyQueryReturnsNothing) {
  TileQuadtree tree(8, 8);
  EXPECT_TRUE(tree.query(TileRect{2, 2, 2, 5}).empty());
}

TEST(Quadtree, PrunesDisjointQuadrants) {
  TileQuadtree tree(16, 16);
  static_cast<void>(tree.query(TileRect{0, 0, 1, 1}));
  // Visiting all 256 leaves + internals would be > 300 nodes; a pruned
  // descent visits a path plus siblings.
  EXPECT_LT(tree.last_visited(), 40u);
}

TEST(Quadtree, NonSquareAndNonPowerOfTwoGrids) {
  TileQuadtree tree(5, 3);
  EXPECT_EQ(tree.query(TileRect{0, 0, 5, 3}).size(), 15u);
  EXPECT_EQ(tree.query(TileRect{4, 2, 5, 3}).size(), 1u);
  TileQuadtree skinny(1, 7);
  EXPECT_EQ(skinny.query(TileRect{0, 0, 1, 7}).size(), 7u);
}

TEST(Quadtree, RejectsEmptyGrid) {
  EXPECT_THROW(TileQuadtree(0, 4), util::ConfigError);
}

// ------------------------------ raster + db -------------------------------

class TitanTest : public ::testing::Test {
 protected:
  TitanTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}),
        capture_(fs_, "sample.bin") {}

  RasterConfig small_config() {
    RasterConfig config;
    config.width_tiles = 4;
    config.height_tiles = 4;
    config.tile_size = 16;
    config.bands = 2;
    config.seed = 77;
    return config;
  }

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
  TraceCapturingFs capture_;
};

TEST_F(TitanTest, GeneratedTilesMatchExpectedSamples) {
  const auto config = small_config();
  RasterStore::generate(capture_, "world.rst", config);
  RasterStore store(capture_, "world.rst");
  EXPECT_EQ(store.config().width_tiles, 4u);
  EXPECT_EQ(store.config().bands, 2u);
  TileData tile;
  store.read_tile(1, 2, 3, tile);
  for (std::uint32_t py = 0; py < config.tile_size; ++py) {
    for (std::uint32_t px = 0; px < config.tile_size; ++px) {
      EXPECT_EQ(tile[py * config.tile_size + px],
                RasterStore::expected_sample(config, 1, 2 * 16 + px,
                                             3 * 16 + py));
    }
  }
}

TEST_F(TitanTest, TileOffsetsAreBandMajor) {
  const auto config = small_config();
  RasterStore::generate(capture_, "world.rst", config);
  RasterStore store(capture_, "world.rst");
  const auto tb = store.tile_bytes();
  EXPECT_EQ(tb, 16u * 16 * 2);
  EXPECT_EQ(store.tile_offset(0, 0, 0), RasterStore::kHeaderBytes);
  EXPECT_EQ(store.tile_offset(0, 1, 0), RasterStore::kHeaderBytes + tb);
  EXPECT_EQ(store.tile_offset(0, 0, 1), RasterStore::kHeaderBytes + 4 * tb);
  EXPECT_EQ(store.tile_offset(1, 0, 0), RasterStore::kHeaderBytes + 16 * tb);
  EXPECT_THROW(static_cast<void>(store.tile_offset(2, 0, 0)),
               util::ConfigError);
}

TEST_F(TitanTest, QueryAggregatesMatchBruteForce) {
  const auto config = small_config();
  RasterStore::generate(capture_, "world.rst", config);
  RasterStore store(capture_, "world.rst");
  TitanDb db(store);
  const PixelRect window{5, 9, 37, 30};  // straddles several tiles
  const auto result = db.range_query(window);
  EXPECT_EQ(result.pixels, (37u - 5) * (30u - 9));

  // Brute force from the generator function.
  double sum = 0.0;
  double lo = 2.0;
  double hi = -2.0;
  for (std::uint32_t y = 9; y < 30; ++y) {
    for (std::uint32_t x = 5; x < 37; ++x) {
      const double v0 = RasterStore::expected_sample(config, 0, x, y);
      const double v1 = RasterStore::expected_sample(config, 1, x, y);
      const double index = (v1 - v0) / (v0 + v1);
      sum += index;
      lo = std::min(lo, index);
      hi = std::max(hi, index);
    }
  }
  EXPECT_NEAR(result.mean_index, sum / result.pixels, 1e-12);
  EXPECT_NEAR(result.min_index, lo, 1e-12);
  EXPECT_NEAR(result.max_index, hi, 1e-12);
}

TEST_F(TitanTest, FetchesOnlyIntersectingTiles) {
  RasterStore::generate(capture_, "world.rst", small_config());
  RasterStore store(capture_, "world.rst");
  TitanDb db(store);
  // Window inside one tile: 2 fetches (one per band).
  const auto result = db.range_query(PixelRect{2, 2, 10, 10});
  EXPECT_EQ(result.tiles_fetched, 2u);
  // Window covering 2x2 tiles: 8 fetches.
  const auto result4 = db.range_query(PixelRect{10, 10, 30, 30});
  EXPECT_EQ(result4.tiles_fetched, 8u);
}

TEST_F(TitanTest, RejectsOutOfBoundsWindow) {
  RasterStore::generate(capture_, "world.rst", small_config());
  RasterStore store(capture_, "world.rst");
  TitanDb db(store);
  EXPECT_THROW(static_cast<void>(db.range_query(PixelRect{0, 0, 65, 10})),
               util::ConfigError);
  EXPECT_THROW(static_cast<void>(db.range_query(PixelRect{5, 5, 5, 10})),
               util::ConfigError);
}

TEST_F(TitanTest, WorkloadIsDeterministicAndInBounds) {
  RasterStore::generate(capture_, "world.rst", small_config());
  RasterStore store(capture_, "world.rst");
  TitanDb db(store);
  const auto a = db.make_workload(50, 9);
  const auto b = db.make_workload(50, 9);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x0, b[i].x0);
    EXPECT_EQ(a[i].y1, b[i].y1);
    EXPECT_LT(a[i].x0, a[i].x1);
    EXPECT_LE(a[i].x1, 64u);
    EXPECT_LE(a[i].y1, 64u);
  }
  // All workload queries execute cleanly.
  for (const auto& q : a) EXPECT_NO_THROW(static_cast<void>(db.range_query(q)));
}

TEST_F(TitanTest, TraceShowsSeekReadPairsPerTile) {
  RasterStore::generate(capture_, "world.rst", small_config());
  {
    RasterStore store(capture_, "world.rst");
    TitanDb db(store);
    static_cast<void>(db.range_query(PixelRect{0, 0, 32, 32}));  // 2x2 tiles x 2 bands
    store.close();
  }
  const auto t = capture_.finish();
  EXPECT_NO_THROW(validate(t));
  const auto stats = trace::compute_stats(t);
  // 8 tile reads, each preceded by a seek (plus generation writes).
  EXPECT_GE(stats.count(trace::TraceOp::kSeek), 8u);
  EXPECT_GE(stats.count(trace::TraceOp::kRead), 8u);
}

}  // namespace
}  // namespace clio::apps::titan
