#include "apps/lu/ooc_lu.hpp"

#include <gtest/gtest.h>

#include "io/file_store.hpp"
#include "trace/stats.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"

namespace clio::apps::lu {
namespace {

class LuTest : public ::testing::Test {
 protected:
  LuTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}),
        capture_(fs_, "sample.bin") {}

  std::vector<double> random_matrix(std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<double> a(n * n);
    for (auto& v : a) v = rng.normal(0.0, 1.0);
    return a;
  }

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
  TraceCapturingFs capture_;
};

TEST_F(LuTest, PanelOffsetsAreFixedStride) {
  EXPECT_EQ(PanelStore::panel_offset(100, 10, 0), 0u);
  EXPECT_EQ(PanelStore::panel_offset(100, 10, 1), 8000u);
  EXPECT_EQ(PanelStore::panel_offset(100, 10, 7), 56000u);
}

TEST_F(LuTest, PanelStoreRoundTripsMatrix) {
  const std::size_t n = 24;
  const auto a = random_matrix(n, 5);
  PanelStore store(capture_, "m.bin", n, 7, /*create=*/true);  // ragged tail
  EXPECT_EQ(store.num_panels(), 4u);
  EXPECT_EQ(store.panel_cols(3), 3u);
  store.store_matrix(a);
  EXPECT_EQ(store.load_matrix(), a);
}

TEST_F(LuTest, PanelStoreRejectsBadShapes) {
  EXPECT_THROW(PanelStore(capture_, "x.bin", 10, 0, true),
               util::ConfigError);
  EXPECT_THROW(PanelStore(capture_, "x.bin", 10, 11, true),
               util::ConfigError);
  PanelStore store(capture_, "ok.bin", 8, 4, true);
  std::vector<double> wrong(5);
  EXPECT_THROW(store.write_panel(0, wrong), util::ConfigError);
  EXPECT_THROW(static_cast<void>(store.panel_cols(2)), util::ConfigError);
}

TEST_F(LuTest, InCoreReferenceSolvesSystems) {
  const std::size_t n = 16;
  auto a = random_matrix(n, 11);
  const auto original = a;
  const auto ipiv = dense_lu_inplace(a, n);
  // Residual of the in-core factorization itself.
  EXPECT_LT(lu_residual(original, a, ipiv, n), 1e-10);
  // Solve against a known solution.
  util::Rng rng(12);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform_double(-2.0, 2.0);
  std::vector<double> b(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t r = 0; r < n; ++r) {
      b[r] += original[j * n + r] * x_true[j];
    }
  }
  const auto x = lu_solve(a, ipiv, b, n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST_F(LuTest, OutOfCoreMatchesDirectResidual) {
  const std::size_t n = 32;
  const auto original = random_matrix(n, 17);
  PanelStore store(capture_, "lu.bin", n, 8, true);
  store.store_matrix(original);
  OutOfCoreLu ooc;
  LuStats stats;
  const auto ipiv = ooc.factor(store, &stats);
  const auto factored = OutOfCoreLu::load_factors_final_order(store, ipiv);
  EXPECT_LT(lu_residual(original, factored, ipiv, n), 1e-10);
  EXPECT_EQ(stats.panel_writes, 4u);
  // Left-looking: panel k reads k earlier panels + itself.
  EXPECT_EQ(stats.panel_reads, 4u + 6u);  // 4 self + (0+1+2+3) history
  EXPECT_GT(stats.flops, 0u);
}

// Property sweep: correctness across panel widths, including ragged tails
// and the degenerate single-panel (in-core) case.
class LuPanelWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuPanelWidth, FactorizationIsCorrect) {
  util::TempDir dir;
  io::ManagedFileSystem fs(std::make_unique<io::RealFileStore>(dir.path()),
                           io::ManagedFsOptions{});
  TraceCapturingFs capture(fs, "sample.bin");
  const std::size_t n = 30;
  util::Rng rng(GetParam() * 100 + 3);
  std::vector<double> original(n * n);
  for (auto& v : original) v = rng.normal(0.0, 1.0);

  PanelStore store(capture, "lu.bin", n, GetParam(), true);
  store.store_matrix(original);
  OutOfCoreLu ooc;
  const auto ipiv = ooc.factor(store);
  const auto factored = OutOfCoreLu::load_factors_final_order(store, ipiv);
  EXPECT_LT(lu_residual(original, factored, ipiv, n), 1e-9);

  // Factors must actually solve systems.
  std::vector<double> b(n, 1.0);
  const auto x = lu_solve(factored, ipiv, b, n);
  std::vector<double> ax(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t r = 0; r < n; ++r) ax[r] += original[j * n + r] * x[j];
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Widths, LuPanelWidth,
                         ::testing::Values(1, 3, 5, 8, 15, 30));

TEST_F(LuTest, PivotingActuallyHappens) {
  // A matrix with a tiny leading entry forces a pivot swap.
  const std::size_t n = 8;
  auto a = random_matrix(n, 23);
  a[0] = 1e-15;
  PanelStore store(capture_, "p.bin", n, 4, true);
  store.store_matrix(a);
  OutOfCoreLu ooc;
  const auto ipiv = ooc.factor(store);
  EXPECT_NE(ipiv[0], 0u);
  const auto factored = OutOfCoreLu::load_factors_final_order(store, ipiv);
  EXPECT_LT(lu_residual(a, factored, ipiv, n), 1e-9);
}

TEST_F(LuTest, SingularMatrixRejected) {
  const std::size_t n = 6;
  std::vector<double> a(n * n, 0.0);  // zero matrix
  PanelStore store(capture_, "s.bin", n, 3, true);
  store.store_matrix(a);
  OutOfCoreLu ooc;
  EXPECT_THROW(ooc.factor(store), util::ExecutionError);
}

TEST_F(LuTest, TraceHasBackwardSeeksToEarlierPanels) {
  const std::size_t n = 32;
  PanelStore store(capture_, "t.bin", n, 8, true);
  store.store_matrix(random_matrix(n, 31));
  OutOfCoreLu ooc;
  static_cast<void>(ooc.factor(store));
  store.close();
  const auto t = capture_.finish();
  EXPECT_NO_THROW(validate(t));
  // Table 3 shape: seeks that jump backwards to earlier panel offsets.
  bool backward_seek = false;
  std::uint64_t last_seek = 0;
  for (const auto& r : t.records) {
    if (r.op != trace::TraceOp::kSeek) continue;
    if (r.offset < last_seek) backward_seek = true;
    last_seek = r.offset;
  }
  EXPECT_TRUE(backward_seek);
}

TEST_F(LuTest, ScheduleMatchesRealFactorizationIo) {
  // The paper-scale trace generator must emit exactly the same seek/read/
  // write sequence the real factorization performs.
  const std::size_t n = 20;
  const std::size_t width = 6;
  PanelStore store(capture_, "sched.bin", n, width, true);
  store.store_matrix(random_matrix(n, 41));
  OutOfCoreLu ooc;
  static_cast<void>(ooc.factor(store));
  store.close();
  const auto real = capture_.finish();
  const auto sched = lu_trace_schedule(n, width, "sample.bin");

  // Filter the real trace to the factorization segment (skip the initial
  // store_matrix writes): it begins at the seek immediately preceding the
  // first read.  Compare the (op, offset, length) sequences.
  std::size_t first_read = real.records.size();
  for (std::size_t i = 0; i < real.records.size(); ++i) {
    if (real.records[i].op == trace::TraceOp::kRead) {
      first_read = i;
      break;
    }
  }
  ASSERT_GT(first_read, 0u);
  ASSERT_LT(first_read, real.records.size());
  std::vector<std::tuple<int, std::uint64_t, std::uint64_t>> real_io;
  for (std::size_t i = first_read - 1; i < real.records.size(); ++i) {
    const auto& r = real.records[i];
    if (r.op == trace::TraceOp::kSeek || r.op == trace::TraceOp::kRead ||
        r.op == trace::TraceOp::kWrite) {
      real_io.emplace_back(static_cast<int>(r.op), r.offset, r.length);
    }
  }
  std::vector<std::tuple<int, std::uint64_t, std::uint64_t>> sched_io;
  for (const auto& r : sched.records) {
    if (r.op == trace::TraceOp::kSeek || r.op == trace::TraceOp::kRead ||
        r.op == trace::TraceOp::kWrite) {
      sched_io.emplace_back(static_cast<int>(r.op), r.offset, r.length);
    }
  }
  EXPECT_EQ(real_io, sched_io);
}

}  // namespace
}  // namespace clio::apps::lu
