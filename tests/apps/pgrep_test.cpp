#include "apps/pgrep/pgrep.hpp"

#include <gtest/gtest.h>

#include "io/file_store.hpp"
#include "trace/stats.hpp"
#include "util/error.hpp"
#include "util/temp_dir.hpp"

namespace clio::apps::pgrep {
namespace {

// ------------------------------ Bitap core --------------------------------

TEST(Bitap, ExactMatchFindsAllOccurrences) {
  Bitap b("abc", 0);
  const auto m = b.find("xxabcyyabcabc");
  EXPECT_EQ(m, (std::vector<std::size_t>{5, 10, 13}));
}

TEST(Bitap, ExactMatchAtStartAndEnd) {
  Bitap b("ab", 0);
  const auto m = b.find("abxxab");
  EXPECT_EQ(m, (std::vector<std::size_t>{2, 6}));
}

TEST(Bitap, NoMatchReturnsEmpty) {
  Bitap b("needle", 0);
  EXPECT_TRUE(b.find("haystack without it").empty());
  EXPECT_FALSE(b.contains("haystack without it"));
}

TEST(Bitap, SingleSubstitutionWithinK1) {
  Bitap b("hello", 1);
  EXPECT_TRUE(b.contains("say heXlo there"));
  EXPECT_FALSE(Bitap("hello", 0).contains("say heXlo there"));
}

TEST(Bitap, SingleDeletionWithinK1) {
  // Text is missing one pattern character.
  Bitap b("hello", 1);
  EXPECT_TRUE(b.contains("say helo there"));
}

TEST(Bitap, SingleInsertionWithinK1) {
  // Text has one extra character inside the pattern.
  Bitap b("hello", 1);
  EXPECT_TRUE(b.contains("say heAllo there"));
}

TEST(Bitap, TwoErrorsNeedK2) {
  Bitap k1("pattern", 1);
  Bitap k2("pattern", 2);
  const std::string text = "a pZttRrn here";  // two substitutions
  EXPECT_FALSE(k1.contains(text));
  EXPECT_TRUE(k2.contains(text));
}

TEST(Bitap, K0OnSingleChar) {
  Bitap b("x", 0);
  EXPECT_EQ(b.find("axbx"), (std::vector<std::size_t>{2, 4}));
}

TEST(Bitap, RejectsBadConstruction) {
  EXPECT_THROW(Bitap("", 0), util::ConfigError);
  EXPECT_THROW(Bitap("ab", 2), util::ConfigError);  // k >= pattern length
  EXPECT_THROW(Bitap(std::string(64, 'a'), 0), util::ConfigError);
}

TEST(Bitap, MatchEndOffsetsAreInclusiveOfEdits) {
  // With k=1, a match can end one earlier (deletion) or later (insertion).
  Bitap b("abcd", 1);
  const auto m = b.find("abcd");
  EXPECT_FALSE(m.empty());
  // An exact occurrence always reports its true end among the matches.
  EXPECT_NE(std::find(m.begin(), m.end(), 4u), m.end());
}

// ------------------------------ Parallel grep -----------------------------

class PgrepTest : public ::testing::Test {
 protected:
  PgrepTest()
      : fs_(std::make_unique<io::RealFileStore>(dir_.path()),
            io::ManagedFsOptions{}),
        capture_(fs_, "sample.bin") {}

  util::TempDir dir_;
  io::ManagedFileSystem fs_;
  TraceCapturingFs capture_;
};

CorpusConfig small_corpus() {
  CorpusConfig config;
  config.size_bytes = 256 * 1024;
  config.pattern = "xylophonequark";  // distinctive: no accidental matches
  config.exact_occurrences = 12;
  config.fuzzy_occurrences = 6;
  config.seed = 21;
  return config;
}

TEST_F(PgrepTest, FindsEveryPlantedExactOccurrence) {
  const auto planted = generate_corpus(capture_, "corpus.txt", small_corpus());
  ParallelGrep grep("xylophonequark", PgrepConfig{.max_errors = 0,
                                                  .num_workers = 3});
  const auto result = grep.search(capture_, "corpus.txt");
  // Every planted exact position p produces a match ending at p + len.
  for (auto p : planted.exact_positions) {
    const auto end = p + small_corpus().pattern.size();
    EXPECT_NE(std::find(result.match_ends.begin(), result.match_ends.end(),
                        end),
              result.match_ends.end())
        << "missing exact match at " << p;
  }
  EXPECT_EQ(result.match_ends.size(), planted.exact_positions.size());
}

TEST_F(PgrepTest, FuzzySearchAlsoFindsMutatedPlants) {
  const auto planted = generate_corpus(capture_, "corpus.txt", small_corpus());
  ParallelGrep exact("xylophonequark", PgrepConfig{.max_errors = 0,
                                                   .num_workers = 3});
  ParallelGrep fuzzy("xylophonequark", PgrepConfig{.max_errors = 1,
                                                   .num_workers = 3});
  const auto exact_result = exact.search(capture_, "corpus.txt");
  const auto fuzzy_result = fuzzy.search(capture_, "corpus.txt");
  // Fuzzy must cover all exact matches and find (at least) the mutants.
  EXPECT_GE(fuzzy_result.match_ends.size(),
            exact_result.match_ends.size() + planted.fuzzy_positions.size());
}

TEST_F(PgrepTest, WorkerCountDoesNotChangeResults) {
  generate_corpus(capture_, "corpus.txt", small_corpus());
  const PgrepConfig base{.max_errors = 1, .num_workers = 1};
  ParallelGrep one("xylophonequark", base);
  const auto r1 = one.search(capture_, "corpus.txt");
  for (std::size_t workers : {2u, 4u, 7u}) {
    PgrepConfig config = base;
    config.num_workers = workers;
    ParallelGrep multi("xylophonequark", config);
    const auto rn = multi.search(capture_, "corpus.txt");
    EXPECT_EQ(rn.match_ends, r1.match_ends) << workers << " workers";
  }
}

TEST_F(PgrepTest, MatchesSpanningBlockBoundariesAreFound) {
  // Tiny read_block forces many block boundaries through the plants.
  generate_corpus(capture_, "corpus.txt", small_corpus());
  ParallelGrep grep("xylophonequark",
                    PgrepConfig{.max_errors = 0,
                                .num_workers = 2,
                                .read_block = 64});
  const auto result = grep.search(capture_, "corpus.txt");
  EXPECT_EQ(result.match_ends.size(), 12u);
}

TEST_F(PgrepTest, TraceShowsMultiProcessSequentialReads) {
  generate_corpus(capture_, "corpus.txt", small_corpus());
  ParallelGrep grep("xylophonequark", PgrepConfig{.max_errors = 0,
                                                  .num_workers = 4});
  static_cast<void>(grep.search(capture_, "corpus.txt"));
  const auto t = capture_.finish();
  EXPECT_NO_THROW(validate(t));
  EXPECT_EQ(t.header.num_processes, 4u);  // one pid per worker
  const auto stats = trace::compute_stats(t);
  EXPECT_GE(stats.count(trace::TraceOp::kRead), 4u);  // every worker reads
}

TEST_F(PgrepTest, ScansWholeFile) {
  generate_corpus(capture_, "corpus.txt", small_corpus());
  ParallelGrep grep("xylophonequark", PgrepConfig{.max_errors = 0,
                                                  .num_workers = 3});
  const auto result = grep.search(capture_, "corpus.txt");
  // Overlap means slightly more than the file size is read in aggregate.
  EXPECT_GE(result.bytes_scanned, small_corpus().size_bytes);
}

TEST_F(PgrepTest, GeneratorRejectsOverfullPlan) {
  CorpusConfig bad = small_corpus();
  bad.size_bytes = 1024;
  bad.exact_occurrences = 500;
  EXPECT_THROW(generate_corpus(capture_, "c.txt", bad), util::ConfigError);
}

}  // namespace
}  // namespace clio::apps::pgrep
