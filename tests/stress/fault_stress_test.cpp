// Cross-layer stress/soak suite for the concurrent I/O path: seeded
// multi-threaded pin/dirty/flush/discard/prefetch mixes over a FaultStore
// that injects EIOs, short reads, torn writes, latency spikes and
// disk-full.  After every run the pool must pass debug_validate() and the
// backing bytes must match the per-thread oracle — any violation prints
// the reproducing seed.
//
// Environment knobs (all optional):
//   CLIO_STRESS_SEED  — run only this seed (the CI soak job sweeps 10)
//   CLIO_STRESS_OPS   — ops per thread (default 2000; TSan jobs inherit it)
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "io/fault_store.hpp"
#include "io/file_store.hpp"
#include "io/uring_store.hpp"
#include "support/stress_harness.hpp"
#include "util/temp_dir.hpp"

namespace clio::test_support {
namespace {

std::vector<std::uint64_t> seeds_under_test() {
  if (const char* env = std::getenv("CLIO_STRESS_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {1, 2, 3};
}

std::uint64_t ops_per_thread() {
  if (const char* env = std::getenv("CLIO_STRESS_OPS")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 2000;
}

/// The all-fault plan most tests run: every data op can fail cleanly, reads
/// can be torn mid-fill, writes mid-persist, and latency spikes widen race
/// windows.  Rates are chosen so a run injects well over the acceptance
/// bar of one fault per 100 pool ops.
io::FaultPlan mixed_plan() {
  io::FaultPlan plan;
  plan.fail_prob = {0.02, 0.02, 0.02, 0.02};  // read, write, readv, writev
  plan.short_read_prob = 0.02;
  plan.torn_write_prob = 0.02;
  plan.latency_prob = 0.01;
  plan.latency_us = 50;
  return plan;
}

void expect_clean(const StressResult& result, std::uint64_t seed) {
  for (const std::string& failure : result.failures) {
    ADD_FAILURE() << failure << "  (reproduce with CLIO_STRESS_SEED=" << seed
                  << ")";
  }
  // A stress run that injected nothing proves nothing: the plans above
  // must actually fire.
  EXPECT_GT(result.injected_faults, 0u)
      << "seed " << seed << " injected no faults";
}

TEST(FaultStress, MixedFaults8ThreadsRealStore) {
  for (const std::uint64_t seed : seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::TempDir dir("clio-stress");
    io::RealFileStore store(dir.path());
    StressConfig config;
    config.seed = seed;
    config.threads = 8;
    config.shards = 16;
    config.capacity_pages = 64;
    config.ops_per_thread = ops_per_thread();
    config.faults = mixed_plan();
    const StressResult result = run_stress(store, config);
    expect_clean(result, seed);
    // Acceptance bar: at least one injected fault per 100 pool ops.
    EXPECT_GE(result.injected_faults * 100, result.ops)
        << "seed " << seed << ": " << result.injected_faults
        << " faults over " << result.ops << " ops";
  }
}

TEST(FaultStress, MixedFaultsOnSimStore) {
  // Same mix against the modeled store: exercises the single-mutex
  // SimFileStore under concurrent gathers, and keeps the suite meaningful
  // on filesystems where TempDir I/O dominates.
  for (const std::uint64_t seed : seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    io::SimFileStore store(4, 64 * 1024);
    StressConfig config;
    config.seed = seed;
    config.threads = 4;
    config.shards = 4;
    config.capacity_pages = 48;
    config.ops_per_thread = ops_per_thread();
    config.faults = mixed_plan();
    const StressResult result = run_stress(store, config);
    expect_clean(result, seed);
  }
}

TEST(FaultStress, AsyncPrefetchWorkersUnderFaults) {
  // Background readahead workers hit the same injected failures as demand
  // loads; drains on flush/discard must still terminate and failed worker
  // gathers must leave pages cold, never half-valid.
  for (const std::uint64_t seed : seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::TempDir dir("clio-stress");
    io::RealFileStore store(dir.path());
    StressConfig config;
    config.seed = seed;
    config.threads = 4;
    config.shards = 4;
    config.capacity_pages = 64;
    config.ops_per_thread = ops_per_thread();
    config.async_prefetch = true;
    config.prefetch_threads = 2;
    config.faults = mixed_plan();
    const StressResult result = run_stress(store, config);
    expect_clean(result, seed);
  }
}

TEST(FaultStress, SingleShardTinyPoolMaximisesEvictionChurn) {
  // shards=1 serializes the page table, so every unwind interleaves with
  // every other op; capacity 8 means nearly every pin evicts — the failed
  // eviction write-back path fires constantly.
  for (const std::uint64_t seed : seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::TempDir dir("clio-stress");
    io::RealFileStore store(dir.path());
    StressConfig config;
    config.seed = seed;
    config.threads = 2;
    config.shards = 1;
    config.capacity_pages = 8;
    config.pages_per_file = 24;
    config.ops_per_thread = ops_per_thread();
    config.faults = mixed_plan();
    const StressResult result = run_stress(store, config);
    expect_clean(result, seed);
  }
}

TEST(FaultStress, DiskFullMidRun) {
  // Exhaust a byte budget mid-run: from then on every flush and eviction
  // write-back fails until the harness disarms for the final clean flush.
  // Dirty data must survive the outage (the oracle checks it landed).
  for (const std::uint64_t seed : seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::TempDir dir("clio-stress");
    io::RealFileStore store(dir.path());
    StressConfig config;
    config.seed = seed;
    config.threads = 4;
    config.shards = 4;
    config.capacity_pages = 32;
    config.ops_per_thread = ops_per_thread() / 2;
    config.faults.disk_full_after_bytes = 256 * 1024;
    config.faults.fail_prob = {0.01, 0.0, 0.01, 0.0};
    const StressResult result = run_stress(store, config);
    expect_clean(result, seed);
    EXPECT_GT(result.surfaced_errors, 0u)
        << "disk-full never surfaced; budget too generous for this run";
  }
}

TEST(FaultStress, SharedFileTokenedAccessUnderFaults) {
  // ROADMAP open item: one file shared by every thread, per-page tokens
  // arbitrating byte access, so cross-thread same-page pin interleavings
  // (pin after foreign pin, prefetch racing a pin, discard observing a
  // foreign pin and unwinding) run under the full fault mix.  The oracle
  // checks uniformity + membership of every value ever written.
  for (const std::uint64_t seed : seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::TempDir dir("clio-stress");
    io::RealFileStore store(dir.path());
    StressConfig config;
    config.seed = seed;
    config.threads = 6;
    config.shards = 4;
    config.capacity_pages = 24;  // < pages_per_file: eviction churn too
    config.pages_per_file = 40;
    config.ops_per_thread = ops_per_thread();
    config.shared_file = true;
    config.faults = mixed_plan();
    const StressResult result = run_stress(store, config);
    expect_clean(result, seed);
  }
}

TEST(FaultStress, SharedFileWithAsyncPrefetchWorkers) {
  // The same shared-file contention with background readahead workers in
  // the mix: worker gathers target pages other threads hold tokens for.
  for (const std::uint64_t seed : seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    io::SimFileStore store(4, 64 * 1024);
    StressConfig config;
    config.seed = seed;
    config.threads = 4;
    config.shards = 4;
    config.capacity_pages = 32;
    config.pages_per_file = 40;
    config.ops_per_thread = ops_per_thread();
    config.shared_file = true;
    config.async_prefetch = true;
    config.prefetch_threads = 2;
    config.faults = mixed_plan();
    const StressResult result = run_stress(store, config);
    expect_clean(result, seed);
  }
}

TEST(FaultStress, AsyncThreadPoolBackendCompletionFaults) {
  // Every data transfer — miss loads, eviction write-backs, coalesced
  // flushes, prefetch gathers — goes through the submission/completion API
  // on the thread-pool backend, with the AsyncFaultStore injecting the
  // seeded plan into completions that arrive out of order.  The byte
  // oracle and debug_validate() must still hold.
  for (const std::uint64_t seed : seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::TempDir dir("clio-stress");
    io::RealFileStore store(dir.path());
    StressConfig config;
    config.seed = seed;
    config.threads = 4;
    config.shards = 4;
    config.capacity_pages = 64;
    config.ops_per_thread = ops_per_thread();
    config.async_backend = AsyncBackend::kThreadPool;
    config.async_prefetch = true;
    config.prefetch_threads = 3;  // >1 worker => out-of-order completions
    config.faults = mixed_plan();
    const StressResult result = run_stress(store, config);
    expect_clean(result, seed);
    EXPECT_GE(result.injected_faults * 100, result.ops)
        << "seed " << seed << ": " << result.injected_faults
        << " completion faults over " << result.ops << " ops";
  }
}

TEST(FaultStress, AsyncUringBackendCompletionFaults) {
  // The same completion-fault mix on the io_uring backend: kernel CQEs
  // complete in whatever order the block layer likes, and the injected
  // errors/tears land on top of that.
  if (!io::UringStore::supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel/build";
  }
  for (const std::uint64_t seed : seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::TempDir dir("clio-stress");
    io::RealFileStore store(dir.path());
    StressConfig config;
    config.seed = seed;
    config.threads = 4;
    config.shards = 4;
    config.capacity_pages = 64;
    config.ops_per_thread = ops_per_thread();
    config.async_backend = AsyncBackend::kUring;
    config.async_prefetch = true;
    config.prefetch_threads = 2;
    config.faults = mixed_plan();
    const StressResult result = run_stress(store, config);
    expect_clean(result, seed);
  }
}

TEST(FaultStress, AsyncBackendSharedFileChurn) {
  // Shared-file contention (per-page tokens, cross-thread same-page pins)
  // with the whole data path completion-driven and a tiny pool forcing
  // eviction write-backs through the async backend under faults.
  for (const std::uint64_t seed : seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::TempDir dir("clio-stress");
    io::RealFileStore store(dir.path());
    StressConfig config;
    config.seed = seed;
    config.threads = 4;
    config.shards = 4;
    config.capacity_pages = 24;
    config.pages_per_file = 40;
    config.ops_per_thread = ops_per_thread();
    config.shared_file = true;
    config.async_backend = AsyncBackend::kThreadPool;
    config.async_prefetch = true;
    config.prefetch_threads = 2;
    config.faults = mixed_plan();
    const StressResult result = run_stress(store, config);
    expect_clean(result, seed);
  }
}

TEST(FaultStress, ShardSweepStaysCoherent) {
  // The shard count changes which locks protect which pages but must never
  // change observable behaviour.
  for (const std::size_t shards : {1u, 4u, 16u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    util::TempDir dir("clio-stress");
    io::RealFileStore store(dir.path());
    StressConfig config;
    config.seed = 7;
    config.threads = 4;
    config.shards = shards;
    config.capacity_pages = 48;
    config.ops_per_thread = ops_per_thread() / 2;
    config.faults = mixed_plan();
    const StressResult result = run_stress(store, config);
    expect_clean(result, config.seed);
  }
}

}  // namespace
}  // namespace clio::test_support
