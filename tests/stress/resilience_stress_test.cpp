// Chaos soak for the end-to-end resilience layer: a seeded LoadGenerator
// mix runs against a server whose storage path is a FaultStore burst
// (clean EIOs, short reads, latency spikes) wrapped by the RetryingStore
// and circuit breaker, then the faults recover.  The availability SLO
// under fire:
//
//  - every request receives a well-formed answer: storage chaos degrades
//    service to 503s, it never tears connections or emits malformed
//    responses (the failure breakdown must stay empty);
//  - the service recovers after the burst: once the injector is disarmed
//    and the breaker's cooldown has elapsed, a clean load run completes
//    with zero errors and a fresh byte-exact read of every file;
//  - no worker wedges: the soak and the final stop() complete at all —
//    client-side receive timeouts turn a wedged worker into a counted
//    failure instead of a hung test.
//
// Every failure message prints the reproducing CLIO_STRESS_SEED; the CI
// stress-soak job sweeps 10 distinct seeds under ASan.
//
// Environment knobs (all optional):
//   CLIO_STRESS_SEED  — run only this seed
//   CLIO_STRESS_OPS   — requests per load connection (default 250)
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "io/fault_store.hpp"
#include "io/file_store.hpp"
#include "io/retrying_store.hpp"
#include "net/client.hpp"
#include "net/fault_channel.hpp"
#include "net/load_gen.hpp"
#include "net/server.hpp"
#include "util/resilience.hpp"
#include "util/temp_dir.hpp"

namespace clio::net {
namespace {

std::vector<std::uint64_t> seeds_under_test() {
  if (const char* env = std::getenv("CLIO_STRESS_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {31, 32, 33};
}

std::uint64_t requests_per_connection() {
  if (const char* env = std::getenv("CLIO_STRESS_OPS")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 250;
}

/// The burst: heavy transient failure on every data op plus short reads
/// and latency spikes.  Deliberately no torn writes and no disk-full —
/// those are permanent answers, and this soak measures how the retry and
/// degradation machinery absorbs *transient* infrastructure sickness.
io::FaultPlan burst_plan(std::uint64_t seed) {
  io::FaultPlan plan;
  plan.seed = seed;
  plan.fail_prob[static_cast<std::size_t>(io::FaultOp::kRead)] = 0.30;
  plan.fail_prob[static_cast<std::size_t>(io::FaultOp::kReadv)] = 0.30;
  plan.fail_prob[static_cast<std::size_t>(io::FaultOp::kWrite)] = 0.20;
  plan.fail_prob[static_cast<std::size_t>(io::FaultOp::kWritev)] = 0.20;
  plan.short_read_prob = 0.10;
  plan.latency_prob = 0.05;
  plan.latency_us = 200;
  return plan;
}

void expect_only_graceful_failures(const LoadReport& report,
                                   std::uint64_t seed, const char* phase) {
  const std::string tag = std::string(phase) + " seed " +
                          std::to_string(seed) +
                          "  (reproduce with CLIO_STRESS_SEED=" +
                          std::to_string(seed) + ")";
  // The SLO: storage chaos may degrade requests to 503, but every request
  // still gets a complete, well-formed HTTP answer on a live connection.
  EXPECT_EQ(report.errors, 0u) << tag;
  EXPECT_EQ(report.failures.total(), 0u) << tag;
  EXPECT_EQ(report.failures.malformed, 0u) << tag;
  EXPECT_EQ(report.failures.disconnects, 0u) << tag;
  EXPECT_EQ(report.failures.timeouts, 0u) << tag;
}

TEST(ResilienceStress, StorageFaultBurstDegradesGracefullyAndRecovers) {
  for (const std::uint64_t seed : seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string seed_hint =
        "  (reproduce with CLIO_STRESS_SEED=" + std::to_string(seed) + ")";
    util::TempDir dir("clio-resilience");

    // The full production chain:
    //   RealFileStore <- FaultStore <- RetryingStore(+breaker) <- fs.
    auto real = std::make_unique<io::RealFileStore>(dir.path(),
                                                    /*idle_fd_cache=*/128);
    auto faulty = std::make_unique<io::FaultStore>(std::move(real));
    io::FaultStore* fault = faulty.get();
    fault->arm(false);  // publish the file zoo fault-free

    util::CircuitBreakerConfig breaker_cfg;
    breaker_cfg.failure_threshold = 8;
    breaker_cfg.open_cooldown_ms = 100;
    breaker_cfg.half_open_successes = 2;
    util::CircuitBreaker breaker(breaker_cfg);

    io::RetryPolicy policy;
    policy.seed = seed;
    policy.backoff.max_retries = 3;
    policy.backoff.base_delay_us = 50;
    policy.backoff.max_delay_us = 2000;

    auto retrying = std::make_unique<io::RetryingStore>(std::move(faulty),
                                                        policy, &breaker);
    io::RetryingStore* retry = retrying.get();

    // A pool far smaller than the working set, so GETs keep missing into
    // the faulty store instead of soaking in cache.
    io::ManagedFsOptions fs_options;
    fs_options.pool_pages = 64;  // 256 KiB vs a ~600 KiB file zoo
    io::ManagedFileSystem fs(std::move(retrying), fs_options);
    retry->bind_stats(&fs.stats());

    std::map<std::string, std::string> docs;
    const std::size_t sizes[] = {4000, 17000, 52021, 130007, 240001, 160000};
    std::vector<std::string> names;
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
      const std::string name = "doc" + std::to_string(i) + ".bin";
      std::string content(sizes[i], '\0');
      for (std::size_t b = 0; b < content.size(); ++b) {
        content[b] = static_cast<char>('a' + (b * 29 + i * 5) % 26);
      }
      auto file = fs.open(name, io::OpenMode::kTruncate);
      file.write(std::as_bytes(
          std::span<const char>(content.data(), content.size())));
      file.close();
      names.push_back(name);
      docs.emplace(name, std::move(content));
    }

    ServerOptions options;
    options.worker_threads = 4;
    options.breaker = &breaker;
    options.request_deadline_ms = 2000;
    MiniWebServer server(fs, options);
    server.start();

    LoadGenOptions load;
    load.connections = 6;
    load.requests_per_connection = requests_per_connection();
    load.keep_alive = true;
    load.post_fraction = 0.2;
    load.post_bytes = 3000;
    load.seed = seed;
    load.files = names;
    // Liveness: a wedged worker surfaces as a counted client timeout
    // instead of hanging the soak.
    load.recv_timeout_ms = 30'000;

    // Phase 1 — the burst.  Service degrades (503s are fine, and with the
    // breaker tripping they are expected); it must not fail ungracefully.
    fault->set_plan(burst_plan(seed));
    fault->arm(true);
    const LoadReport burst = LoadGenerator(load).run(server.port());
    expect_only_graceful_failures(burst, seed, "burst");
    EXPECT_EQ(burst.ok + burst.rejected_503, burst.requests_sent)
        << "burst seed " << seed << seed_hint;
    EXPECT_GT(burst.ok, 0u) << "burst seed " << seed << seed_hint;
    // The storm must have actually exercised the machinery under test.
    EXPECT_GT(fault->stats().total_faults(), 0u) << seed_hint;
    EXPECT_GT(retry->stats().retries, 0u) << seed_hint;
    EXPECT_GT(retry->stats().absorbed, 0u) << seed_hint;

    // The observability surface answers while service is degraded: /statz
    // straight after the burst, while the breaker is still settling.  Its
    // body goes to stdout so degraded mode is observable in CI soak logs.
    {
      HttpClient statz_client(server.port());
      const auto statz = statz_client.get("/statz");
      EXPECT_EQ(statz.status, 200) << seed_hint;
      EXPECT_NE(statz.body.find("\"breaker\""), std::string::npos)
          << seed_hint;
      EXPECT_NE(statz.body.find("\"stages\""), std::string::npos)
          << seed_hint;
      std::cout << "post-burst /statz (seed " << seed << "):\n"
                << statz.body << "\n";
    }

    // Phase 2 — recovery.  Faults off; wait out the breaker (half-open
    // probes need a few clean storage calls to close it again).
    fault->arm(false);
    bool recovered = false;
    HttpClient probe(server.port(), /*keep_alive=*/true);
    for (int i = 0; i < 200 && !recovered; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      try {
        // The probe must reach the store (a cache hit would skip the
        // breaker's half-open probe and never close it).  Inside the try:
        // flushing pages left dirty by burst-phase 503s fast-fails while
        // the breaker is still open.
        fs.drop_caches();
        recovered = probe.get("/" + names[0]).status == 200 &&
                    breaker.state() == util::CircuitBreaker::State::kClosed;
      } catch (const std::exception&) {
      }
    }
    probe.disconnect();
    EXPECT_TRUE(recovered)
        << "service did not recover after the burst, seed " << seed
        << seed_hint;

    // Post-burst SLO: a clean load run completes with zero errors and
    // zero 503s — yesterday's storm must leave no residue.
    const LoadReport clean = LoadGenerator(load).run(server.port());
    expect_only_graceful_failures(clean, seed, "recovery");
    EXPECT_EQ(clean.ok, clean.requests_sent)
        << "recovery seed " << seed << seed_hint;

    // Byte-exact drain: every file reads back exactly, through the server.
    HttpClient fresh(server.port(), /*keep_alive=*/true);
    for (const auto& [name, content] : docs) {
      const auto response = fresh.get("/" + name);
      EXPECT_EQ(response.status, 200)
          << "drain GET /" << name << " seed " << seed << seed_hint;
      EXPECT_TRUE(response.body == content)
          << "drain GET /" << name << " not byte-exact, seed " << seed
          << seed_hint;
    }
    fresh.disconnect();

    // stop() joining everything — after a soak that tripped the breaker,
    // parked workers in retry backoff and 503'd half the load — is the
    // no-wedged-workers assertion.
    server.stop();

    // Span accounting balances across the whole soak: every span opened
    // by any request — absorbed, degraded, retried or drained — closed.
    EXPECT_EQ(server.tracer().spans_opened(), server.tracer().spans_closed())
        << seed_hint;
    EXPECT_GT(server.tracer().traces_started(), 0u) << seed_hint;
    fs.pool().drain_prefetches();
    ASSERT_NO_THROW(fs.pool().debug_validate()) << seed_hint;

    const ServerStats stats = server.stats();
    EXPECT_GT(stats.requests, 0u) << seed_hint;
    // Degraded-mode answers happened (the burst was strong enough to trip
    // or exhaust something) and the counters kept the books.
    EXPECT_GT(stats.degraded_503 + stats.rejected_503, 0u) << seed_hint;
    EXPECT_EQ(fs.stats().resilience().retries, retry->stats().retries)
        << seed_hint;
  }
}

TEST(ResilienceStress, DualLayerBurstStaysDiagnosableAndRecovers) {
  // Both injectors at once: the storage burst (absorbed or degraded to
  // 503 by the retry/breaker chain) plus socket-layer faults (which DO
  // fail requests — a severed connection cannot carry an answer).  The
  // SLO shifts accordingly: every failure must be *classified* (the
  // breakdown accounts for each error, nothing lands in `other`), the
  // service must keep making progress through the storm, and once both
  // injectors disarm a clean run must return to zero errors.
  for (const std::uint64_t seed : seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string seed_hint =
        "  (reproduce with CLIO_STRESS_SEED=" + std::to_string(seed) + ")";
    util::TempDir dir("clio-resilience2");

    auto real = std::make_unique<io::RealFileStore>(dir.path(),
                                                    /*idle_fd_cache=*/128);
    auto faulty = std::make_unique<io::FaultStore>(std::move(real));
    io::FaultStore* fault = faulty.get();
    fault->arm(false);

    util::CircuitBreakerConfig breaker_cfg;
    breaker_cfg.failure_threshold = 8;
    breaker_cfg.open_cooldown_ms = 100;
    util::CircuitBreaker breaker(breaker_cfg);

    io::RetryPolicy policy;
    policy.seed = seed;
    policy.backoff.max_retries = 3;
    policy.backoff.base_delay_us = 50;
    policy.backoff.max_delay_us = 2000;
    auto retrying = std::make_unique<io::RetryingStore>(std::move(faulty),
                                                        policy, &breaker);

    io::ManagedFsOptions fs_options;
    fs_options.pool_pages = 64;
    io::ManagedFileSystem fs(std::move(retrying), fs_options);

    std::vector<std::string> names;
    for (std::size_t i = 0; i < 4; ++i) {
      const std::string name = "doc" + std::to_string(i) + ".bin";
      std::string content(20000 + i * 60000, '\0');
      for (std::size_t b = 0; b < content.size(); ++b) {
        content[b] = static_cast<char>('a' + (b * 29 + i * 5) % 26);
      }
      auto file = fs.open(name, io::OpenMode::kTruncate);
      file.write(std::as_bytes(
          std::span<const char>(content.data(), content.size())));
      file.close();
      names.push_back(name);
    }

    NetFaultPlan net_plan;
    net_plan.seed = seed ^ 0xfeedu;
    net_plan.accept_drop_prob = 0.02;
    net_plan.recv_fail_prob = 0.02;
    net_plan.recv_disconnect_prob = 0.02;
    net_plan.send_fail_prob = 0.02;
    net_plan.short_send_prob = 0.02;
    NetFaultInjector injector(net_plan);
    injector.arm(false);

    ServerOptions options;
    options.worker_threads = 4;
    options.breaker = &breaker;
    options.request_deadline_ms = 2000;
    options.fault_injector = &injector;
    MiniWebServer server(fs, options);
    server.start();

    LoadGenOptions load;
    load.connections = 6;
    load.requests_per_connection = requests_per_connection();
    load.keep_alive = true;
    load.seed = seed;
    load.files = names;
    load.recv_timeout_ms = 30'000;

    fault->set_plan(burst_plan(seed));
    fault->arm(true);
    injector.arm(true);
    const LoadReport burst = LoadGenerator(load).run(server.port());
    // Progress through the storm, and every error accounted for by class.
    EXPECT_GT(burst.ok, 0u) << "dual burst seed " << seed << seed_hint;
    EXPECT_EQ(burst.failures.total(), burst.errors)
        << "dual burst seed " << seed << seed_hint;
    EXPECT_EQ(burst.failures.other, 0u)
        << "dual burst seed " << seed << seed_hint;
    EXPECT_GT(fault->stats().total_faults() + injector.stats().total_faults(),
              0u)
        << seed_hint;

    // Recovery: both injectors off, breaker allowed to close.
    fault->arm(false);
    injector.arm(false);
    bool recovered = false;
    HttpClient probe(server.port(), /*keep_alive=*/true);
    for (int i = 0; i < 200 && !recovered; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      try {
        fs.drop_caches();
        recovered = probe.get("/" + names[0]).status == 200 &&
                    breaker.state() == util::CircuitBreaker::State::kClosed;
      } catch (const std::exception&) {
      }
    }
    probe.disconnect();
    EXPECT_TRUE(recovered) << "dual-layer recovery failed, seed " << seed
                           << seed_hint;

    const LoadReport clean = LoadGenerator(load).run(server.port());
    expect_only_graceful_failures(clean, seed, "dual recovery");
    EXPECT_EQ(clean.ok, clean.requests_sent)
        << "dual recovery seed " << seed << seed_hint;

    server.stop();
    fs.pool().drain_prefetches();
    ASSERT_NO_THROW(fs.pool().debug_validate()) << seed_hint;
    // Even with connections severed mid-request by the net injector, RAII
    // unwinding must close every span it opened.
    EXPECT_EQ(server.tracer().spans_opened(), server.tracer().spans_closed())
        << seed_hint;
  }
}

}  // namespace
}  // namespace clio::net
