// Seeded request-mix soak for the worker-pool serving layer: a
// multi-threaded GET/POST mix driven over a server whose every connection
// runs through a FaultChannel (accept drops, recv/send EIO, orderly
// disconnects, short sends = mid-response truncation, slow-client latency).
// The PR 3 harness idiom at the socket layer:
//
//  - byte-exact oracle under fire: every 200 GET body must equal the known
//    file content exactly; every 201 POST is recorded and re-read after the
//    drain — a torn response or a torn stored body is an immediate failure.
//  - served-byte/demand accounting: the bytes the clients received in
//    complete 200 responses must equal the bytes the server accounted as
//    sent (counted only after a full send), and likewise for POST bodies.
//  - clean drain: after the storm the injector is disarmed and a fresh
//    client must read every file byte-exact.
//
// Every failure message prints the reproducing CLIO_STRESS_SEED; the CI
// stress-soak job sweeps 10 distinct seeds under ASan.
//
// Environment knobs (all optional):
//   CLIO_STRESS_SEED  — run only this seed
//   CLIO_STRESS_OPS   — requests per client thread (default 250)
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "io/file_store.hpp"
#include "net/client.hpp"
#include "net/fault_channel.hpp"
#include "net/http.hpp"
#include "net/load_gen.hpp"
#include "net/server.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"

namespace clio::net {
namespace {

std::vector<std::uint64_t> seeds_under_test() {
  if (const char* env = std::getenv("CLIO_STRESS_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {21, 22, 23};
}

/// Open fds in this process right now — the soak's leak oracle.
std::size_t count_open_fds() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}

std::uint64_t requests_per_client() {
  if (const char* env = std::getenv("CLIO_STRESS_OPS")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 250;
}

NetFaultPlan storm_plan(std::uint64_t seed) {
  NetFaultPlan plan;
  plan.seed = seed;
  plan.accept_drop_prob = 0.02;
  plan.recv_fail_prob = 0.02;
  plan.recv_disconnect_prob = 0.02;
  plan.send_fail_prob = 0.02;
  plan.short_send_prob = 0.02;
  plan.latency_prob = 0.01;
  plan.latency_us = 100;
  return plan;
}

struct WebStressResult {
  std::uint64_t ok_gets = 0;
  std::uint64_t ok_posts = 0;
  std::uint64_t errors = 0;
  std::uint64_t client_get_bytes = 0;
  std::uint64_t client_post_bytes = 0;
  std::vector<std::string> failures;
};

/// One seeded soak round: `clients` keep-alive connections drive a mixed
/// GET/POST stream against a fault-wrapped server, verifying every
/// successful response byte-exactly as it arrives.
WebStressResult run_web_stress(std::uint64_t seed,
                               io::ManagedFileSystem& fs,
                               MiniWebServer& server,
                               const std::map<std::string, std::string>& docs,
                               int clients, std::uint64_t requests) {
  WebStressResult result;
  std::mutex mutex;  // failures + posted-file log
  std::vector<std::pair<std::string, std::string>> posted;  // name -> body
  std::vector<std::string> doc_names;
  for (const auto& [name, content] : docs) doc_names.push_back(name);

  auto worker = [&](int c) {
    const std::string tag =
        "seed=" + std::to_string(seed) + " client=" + std::to_string(c);
    util::Rng rng(util::SplitMix64(seed * 0x9e37u + c).next());
    util::ZipfDistribution zipf(doc_names.size(), 1.0);
    WebStressResult local;
    std::vector<std::pair<std::string, std::string>> local_posted;
    HttpClient client(server.port(), /*keep_alive=*/true);
    for (std::uint64_t r = 0; r < requests; ++r) {
      try {
        if (rng.bernoulli(0.25)) {
          // POST a deterministic, uniformly-filled body (size varies so
          // truncation at any boundary is visible).
          const std::size_t bytes = 64 + rng.uniform_u64(4000);
          std::string body(bytes,
                           static_cast<char>('A' + (c * 11 + r) % 26));
          const auto response = client.post("/upload", body);
          if (response.status == 201) {
            ++local.ok_posts;
            local.client_post_bytes += body.size();
            local_posted.emplace_back(response.body, std::move(body));
          } else {
            ++local.errors;
          }
        } else {
          const std::string& name = doc_names[zipf(rng)];
          const auto response = client.get("/" + name);
          if (response.status == 200) {
            ++local.ok_gets;
            local.client_get_bytes += response.body.size();
            // Byte-exact oracle: a complete 200 must carry exactly the
            // published content, faults or not.
            if (response.body != docs.at(name)) {
              local.failures.push_back(
                  tag + " req=" + std::to_string(r) + ": GET /" + name +
                  " returned " + std::to_string(response.body.size()) +
                  " bytes that differ from the published content");
            }
          } else {
            ++local.errors;
          }
        }
      } catch (const std::exception&) {
        // Injected transport failure surfaced to the client; the next
        // round trip reconnects.  That is the point of the exercise.
        ++local.errors;
      }
    }
    std::lock_guard<std::mutex> lock(mutex);
    result.ok_gets += local.ok_gets;
    result.ok_posts += local.ok_posts;
    result.errors += local.errors;
    result.client_get_bytes += local.client_get_bytes;
    result.client_post_bytes += local.client_post_bytes;
    for (auto& f : local.failures) result.failures.push_back(std::move(f));
    for (auto& p : local_posted) posted.push_back(std::move(p));
  };

  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) threads.emplace_back(worker, c);
    for (auto& t : threads) t.join();
  }

  const std::string seed_tag = "seed=" + std::to_string(seed);

  // Post-drain verification of every acknowledged POST: a 201 means the
  // body was stored; after the drain it must read back byte-exact through
  // the managed fs (a torn write behind a 201 is a durability lie).
  for (const auto& [name, body] : posted) {
    if (!fs.exists(name)) {
      result.failures.push_back(seed_tag + ": acknowledged POST file '" +
                                name + "' does not exist after the drain");
      continue;
    }
    auto file = fs.open(name, io::OpenMode::kRead);
    std::string stored(static_cast<std::size_t>(file.size()), '\0');
    file.read_exact(std::as_writable_bytes(
        std::span<char>(stored.data(), stored.size())));
    if (stored != body) {
      result.failures.push_back(seed_tag + ": acknowledged POST file '" +
                                name + "' stored " +
                                std::to_string(stored.size()) +
                                " bytes that differ from the posted body");
    }
  }
  return result;
}

void expect_clean(const WebStressResult& result, const ServerStats& stats,
                  const NetFaultStats& faults, std::uint64_t seed) {
  for (const std::string& failure : result.failures) {
    ADD_FAILURE() << failure << "  (reproduce with CLIO_STRESS_SEED=" << seed
                  << ")";
  }
  // Served-byte/demand oracle: what the clients received in complete
  // responses is exactly what the server accounted after complete sends.
  EXPECT_EQ(result.client_get_bytes, stats.get_body_bytes_sent)
      << "seed " << seed << ": client GET bytes vs server-sent bytes"
      << "  (reproduce with CLIO_STRESS_SEED=" << seed << ")";
  EXPECT_EQ(result.client_post_bytes, stats.post_body_bytes)
      << "seed " << seed << ": client POST bytes vs server-stored bytes"
      << "  (reproduce with CLIO_STRESS_SEED=" << seed << ")";
  // A storm that injected nothing proves nothing.
  EXPECT_GT(faults.total_faults(), 0u)
      << "seed " << seed << " injected no faults";
  // And the service must not have collapsed: most requests still succeed.
  EXPECT_GT(result.ok_gets + result.ok_posts, 0u) << "seed " << seed;
}

TEST(WebStress, SeededRequestMixUnderNetFaults) {
  for (const std::uint64_t seed : seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::TempDir dir("clio-webstress");
    io::ManagedFileSystem fs(
        std::make_unique<io::RealFileStore>(dir.path(),
                                            /*idle_fd_cache=*/128),
        io::ManagedFsOptions{});

    // Publish a small zoo of files with deterministic per-file content.
    std::map<std::string, std::string> docs;
    const std::size_t sizes[] = {900, 3100, 7501, 14063, 26000, 50607};
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
      const std::string name = "doc" + std::to_string(i) + ".bin";
      std::string content(sizes[i], '\0');
      for (std::size_t b = 0; b < content.size(); ++b) {
        content[b] = static_cast<char>('a' + (b * 31 + i * 7) % 26);
      }
      auto file = fs.open(name, io::OpenMode::kTruncate);
      file.write(std::as_bytes(
          std::span<const char>(content.data(), content.size())));
      file.close();
      docs.emplace(name, std::move(content));
    }

    NetFaultInjector injector(storm_plan(seed));
    ServerOptions options;
    options.worker_threads = 4;
    options.max_pending = 16;
    options.fault_injector = &injector;
    // The hot cache rides the storm too: a stale or torn cached body would
    // fail the byte-exact oracle, and the 25% POST mix exercises the
    // invalidate-on-write contract continuously.
    options.hot_cache_entries = 4;
    MiniWebServer server(fs, options);
    server.start();

    WebStressResult result = run_web_stress(
        seed, fs, server, docs, /*clients=*/6, requests_per_client());

    // Clean drain: faults off, every file must read byte-exact through a
    // fresh connection, and the pool must still satisfy its invariants.
    // Drain reads count into the client-side byte tally too — the server's
    // served-byte counter includes them.
    injector.arm(false);
    HttpClient fresh(server.port(), /*keep_alive=*/true);
    for (const auto& [name, content] : docs) {
      const auto response = fresh.get("/" + name);
      EXPECT_EQ(response.status, 200)
          << "seed " << seed << ": clean drain GET /" << name
          << "  (reproduce with CLIO_STRESS_SEED=" << seed << ")";
      EXPECT_TRUE(response.body == content)
          << "seed " << seed << ": clean drain GET /" << name
          << " not byte-exact  (reproduce with CLIO_STRESS_SEED=" << seed
          << ")";
      if (response.status == 200) {
        ++result.ok_gets;
        result.client_get_bytes += response.body.size();
      }
    }
    fresh.disconnect();
    // stop() joins every worker, so the counters read below are final.
    server.stop();
    fs.pool().drain_prefetches();
    ASSERT_NO_THROW(fs.pool().debug_validate())
        << "seed " << seed
        << "  (reproduce with CLIO_STRESS_SEED=" << seed << ")";

    expect_clean(result, server.stats(), injector.stats(), seed);
  }
}

TEST(WebStress, MostlyIdleConnectionSoak) {
  // The C10K soak: thousands of keep-alive connections, nearly all parked
  // idle, over a handful of workers — the workload the event loop exists
  // for — under the seeded net fault plan, with the served-byte oracle,
  // a drain-deadline check on stop() and fd-leak accounting at the end.
  //
  //   CLIO_SOAK_CONNS  — target connection count (default 2000; CI's
  //                      stress-soak job raises ulimit -n and asks for
  //                      10000, the TSan job scales down to 500)
  struct rlimit nofile {};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &nofile), 0);
  if (nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;  // best effort; cap re-checked below
    (void)setrlimit(RLIMIT_NOFILE, &nofile);
    ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &nofile), 0);
  }
  std::size_t target = 2000;
  if (const char* env = std::getenv("CLIO_SOAK_CONNS")) {
    target = std::strtoull(env, nullptr, 10);
  }
  // Each connection costs two fds (client + server end); keep headroom for
  // the suite's own files, the pool and the listener/epoll/eventfd set.
  const std::size_t conns = std::min<std::size_t>(
      target,
      (static_cast<std::size_t>(nofile.rlim_cur) - 512) / 2);
  const std::uint64_t seed = seeds_under_test().front();

  const std::size_t fds_before = count_open_fds();
  util::TempDir dir("clio-webstress");
  io::ManagedFileSystem fs(std::make_unique<io::RealFileStore>(dir.path()),
                           io::ManagedFsOptions{});
  std::string content(8192, '\0');
  for (std::size_t b = 0; b < content.size(); ++b) {
    content[b] = static_cast<char>('a' + (b * 31) % 26);
  }
  {
    auto file = fs.open("doc.bin", io::OpenMode::kTruncate);
    file.write(std::as_bytes(
        std::span<const char>(content.data(), content.size())));
    file.close();
  }

  NetFaultInjector injector(storm_plan(seed));
  ServerOptions options;
  options.worker_threads = 8;
  options.max_pending = 64;
  options.fault_injector = &injector;
  options.hot_cache_entries = 4;
  options.drain_deadline_ms = 2000;
  MiniWebServer server(fs, options);
  server.start();

  // Phase 1: park the herd.  Every connection does one GET (byte-checked)
  // and then goes silent.  Injected faults fail individual setups; those
  // connections are simply not parked.
  std::mutex mutex;
  std::vector<Socket> parked;
  std::uint64_t client_get_bytes = 0;
  std::uint64_t setup_errors = 0;
  const std::string wire =
      "GET /doc.bin HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
  {
    const std::size_t spinners = 8;
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < spinners; ++t) {
      threads.emplace_back([&, t] {
        std::vector<Socket> local;
        std::uint64_t local_bytes = 0;
        std::uint64_t local_errors = 0;
        for (std::size_t i = t; i < conns; i += spinners) {
          try {
            Socket s = connect_loopback(server.port());
            set_recv_timeout(s.fd(), 10000);
            s.send_all(wire.data(), wire.size());
            const auto response = read_response(s);
            if (response.status == 200 && response.body == content &&
                response.keep_alive) {
              local_bytes += response.body.size();
              local.push_back(std::move(s));
            } else if (response.status == 200) {
              ++local_errors;  // torn body would fail the oracle below
            } else {
              ++local_errors;
            }
          } catch (const std::exception&) {
            ++local_errors;  // injected accept drop / recv fault
          }
        }
        std::lock_guard<std::mutex> lock(mutex);
        client_get_bytes += local_bytes;
        setup_errors += local_errors;
        for (auto& s : local) parked.push_back(std::move(s));
      });
    }
    for (auto& t : threads) t.join();
  }
  // The storm must not have eaten the herd: the point is mostly-idle mass.
  ASSERT_GT(parked.size(), conns / 2)
      << "seed " << seed << ": only " << parked.size() << " of " << conns
      << " connections survived setup";

  // Phase 2: a small active mix keeps the workers busy while the herd
  // sits parked — proving idle connections cost fds, not throughput.
  {
    std::vector<std::thread> actives;
    std::atomic<std::uint64_t> active_bytes{0};
    for (int c = 0; c < 4; ++c) {
      actives.emplace_back([&, c] {
        HttpClient client(server.port(), /*keep_alive=*/true);
        std::uint64_t local = 0;
        for (int r = 0; r < 100; ++r) {
          try {
            const auto response = client.get("/doc.bin");
            if (response.status == 200) {
              EXPECT_EQ(response.body, content)
                  << "seed " << seed << " active client " << c;
              local += response.body.size();
            }
          } catch (const std::exception&) {
          }
        }
        active_bytes.fetch_add(local);
      });
    }
    for (auto& t : actives) t.join();
    client_get_bytes += active_bytes.load();
  }

  // Phase 3: poke a sample of the parked herd — a parked connection is
  // alive, not merely unclosed.  Faults can still kill individual pokes.
  std::uint64_t poked_ok = 0;
  for (std::size_t i = 0; i < parked.size(); i += 64) {
    try {
      parked[i].send_all(wire.data(), wire.size());
      const auto response = read_response(parked[i]);
      if (response.status == 200) {
        EXPECT_EQ(response.body, content) << "seed " << seed << " poke " << i;
        client_get_bytes += response.body.size();
        ++poked_ok;
      }
    } catch (const std::exception&) {
    }
  }
  EXPECT_GT(poked_ok, 0u) << "seed " << seed;

  // Clean drain exchange, then stop() with the drain-deadline stopwatch:
  // closing thousands of parked fds must not stretch the shutdown.
  injector.arm(false);
  {
    HttpClient fresh(server.port());
    const auto response = fresh.get("/doc.bin");
    EXPECT_EQ(response.status, 200) << "seed " << seed;
    EXPECT_EQ(response.body, content) << "seed " << seed;
    if (response.status == 200) client_get_bytes += response.body.size();
  }
  const auto t0 = std::chrono::steady_clock::now();
  server.stop();
  const auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(stop_ms, options.drain_deadline_ms + 5000)
      << "seed " << seed << ": stop() took " << stop_ms
      << " ms against a " << options.drain_deadline_ms << " ms drain deadline";

  // Served-byte oracle across all phases, storm included.
  EXPECT_EQ(client_get_bytes, server.stats().get_body_bytes_sent)
      << "seed " << seed << " (reproduce with CLIO_STRESS_SEED=" << seed
      << ", CLIO_SOAK_CONNS=" << conns << ")";
  EXPECT_GT(injector.stats().total_faults(), 0u) << "seed " << seed;

  // Fd accounting: with the client ends gone and the server stopped, the
  // process is back to its pre-test baseline (listener, epoll set,
  // eventfd and every one of the thousands of connection fds released).
  parked.clear();
  EXPECT_LE(count_open_fds(), fds_before + 16)
      << "seed " << seed << ": fd leak across the soak";
}

TEST(WebStress, BackpressureUnderStormNeverWedgesTheServer) {
  // A hostile mix of faults and a tiny queue: the accept loop must keep
  // answering (503 or service) for the whole storm — the test completing
  // at all is the assertion, the final clean exchange the proof of life.
  for (const std::uint64_t seed : seeds_under_test()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::TempDir dir("clio-webstress");
    io::ManagedFileSystem fs(
        std::make_unique<io::RealFileStore>(dir.path(),
                                            /*idle_fd_cache=*/128),
        io::ManagedFsOptions{});
    {
      auto file = fs.open("doc.bin", io::OpenMode::kTruncate);
      std::vector<std::byte> content(8192, std::byte{0x42});
      file.write(content);
      file.close();
    }
    NetFaultInjector injector(storm_plan(seed));
    ServerOptions options;
    options.worker_threads = 1;
    options.max_pending = 2;
    options.keep_alive = false;  // maximal accept/queue churn
    options.fault_injector = &injector;
    MiniWebServer server(fs, options);
    server.start();

    LoadGenOptions load;
    load.connections = 6;
    load.requests_per_connection = requests_per_client() / 2;
    load.keep_alive = false;
    load.seed = seed;
    load.files = {"doc.bin"};
    const LoadReport report = LoadGenerator(load).run(server.port());
    EXPECT_GT(report.ok + report.errors + report.rejected_503, 0u);

    injector.arm(false);
    HttpClient client(server.port());
    EXPECT_EQ(client.get("/doc.bin").status, 200)
        << "seed " << seed
        << "  (reproduce with CLIO_STRESS_SEED=" << seed << ")";
    server.stop();
  }
}

}  // namespace
}  // namespace clio::net
