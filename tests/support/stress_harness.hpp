#pragma once

// Seeded multi-threaded stress harness for the concurrent I/O path.
//
// The harness runs a random pin/dirty/flush/discard/prefetch mix on N
// threads over one BufferPool whose BackingStore is wrapped in a FaultStore,
// so every error and unwind path (failed miss loads, torn coalesced
// flushes, failed eviction write-backs, aborted prefetch gathers, failing
// async readahead workers) fires under real thread interleavings.  After
// the run it disarms the faults, flushes cleanly, checks every pool
// invariant via BufferPool::debug_validate(), and compares the backing
// bytes of every touched page against a per-thread byte oracle.
//
// Every failure string carries the run's seed: re-running the same config
// with that seed replays the same fault plan.
//
// Soundness rules the workload obeys (and why):
//  - Each thread owns one file and is the only thread that reads or writes
//    that file's bytes through PageGuards.  Cross-thread contention still
//    happens where the bugs live — shared shards, the global frame pool,
//    eviction stealing, async workers — but page bytes are never raced at
//    the user level, which keeps TSan meaningful and the oracle exact.
//  - Foreign files are touched only through prefetch_range (no user-level
//    byte access, no pins), so a thread's discard_file never observes a
//    foreign pin.
//  - Writes always fill whole pages with one marker byte, and the fault
//    plan's torn_granularity equals the page size, so a backing page is
//    always uniformly one byte — the oracle reasons in single bytes.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/async_store.hpp"
#include "io/buffer_pool.hpp"
#include "io/fault_store.hpp"
#include "io/file_store.hpp"
#include "io/uring_store.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace clio::test_support {

/// Which AsyncBackingStore the pool drives.  kNone keeps the sync path
/// (the pool may still build its own ThreadPoolAsyncStore for readahead
/// when async_prefetch is set).  kThreadPool and kUring route *every* data
/// transfer — miss loads, eviction write-backs, coalesced flushes and
/// prefetch gathers — through the submission/completion API, wrapped in an
/// AsyncFaultStore so the seeded plan injects its faults into completions
/// arriving out of order.
enum class AsyncBackend { kNone, kThreadPool, kUring };

struct StressConfig {
  std::uint64_t seed = 1;
  int threads = 8;
  std::size_t shards = 4;
  std::size_t page_size = 256;
  /// Much smaller than threads * pages_per_file so eviction churns.
  std::size_t capacity_pages = 64;
  std::size_t pages_per_file = 48;
  std::uint64_t ops_per_thread = 2000;
  bool async_prefetch = false;
  std::size_t prefetch_threads = 2;
  /// Shared-file mode: every thread works on ONE file, with a per-page
  /// try-lock token deciding who may touch a page's bytes.  This exercises
  /// cross-thread same-page pin interleavings (two threads pinning the
  /// same page back-to-back, prefetch racing a pin, discard racing a
  /// foreign pin) that the per-thread-file mode cannot reach.  The oracle
  /// is necessarily weaker — flush/discard interleave with other threads'
  /// writes, so pages are checked for uniformity + membership in the set
  /// of values ever written, never exactness.
  bool shared_file = false;
  /// Async submission/completion backend under the pool (see AsyncBackend).
  /// kUring requires the backing store to be a RealFileStore and the
  /// running kernel to accept io_uring — gate with UringStore::supported().
  AsyncBackend async_backend = AsyncBackend::kNone;
  /// Faults to inject; `seed` and `torn_granularity` are overridden by the
  /// harness (granularity must equal page_size — see file comment).
  io::FaultPlan faults{};
};

struct StressResult {
  std::uint64_t ops = 0;              ///< pool-level operations attempted
  std::uint64_t injected_faults = 0;  ///< faults the FaultStore threw
  std::uint64_t backing_calls = 0;    ///< data ops that reached the store
  std::uint64_t surfaced_errors = 0;  ///< IoErrors the workload caught
  std::vector<std::string> failures;  ///< oracle/invariant violations

  [[nodiscard]] bool passed() const { return failures.empty(); }
};

/// Byte oracle for one thread's file.  Tracks, per page, the set of values
/// the backing store may legitimately hold given which writes were
/// provably persisted, which may have been dropped by a discard, and which
/// are still pending — see the state rules on each method.
class PageOracle {
 public:
  explicit PageOracle(std::size_t pages) : pages_(pages) {}

  /// A full-page write of value `v` went through the pool (pin +
  /// mark_dirty succeeded).  The pool now holds v; the backing store may
  /// later hold v (flush or eviction write-back) but also still holds
  /// whatever it had — hence accumulate, don't replace.
  void on_write(std::uint64_t page, std::uint8_t v) {
    Page& p = at(page);
    p.written = true;
    p.last = v;
    p.dirty = true;
    p.pool_exact = true;
    p.expect = v;
    p.acceptable.insert(v);
  }

  /// flush_file returned without throwing: every dirty page of the file
  /// was persisted with its current (= last written) bytes, so the backing
  /// value is now known exactly.  Pages already clean (evicted and written
  /// back earlier) also hold `last` — eviction persists current content.
  void on_flush_ok() {
    for (Page& p : pages_) {
      if (p.dirty) {
        p.acceptable.clear();
        p.acceptable.insert(p.last);
        p.dirty = false;
      }
    }
  }

  /// discard_file succeeded: pending writes are gone.  A page whose write
  /// was never provably persisted now reloads from the backing store,
  /// which holds *some* acceptable value — the pool is no longer exact.
  void on_discard() {
    for (Page& p : pages_) {
      if (p.dirty) {
        p.dirty = false;
        p.pool_exact = false;
      }
    }
  }

  /// A pool read of `page` observed `data`.  Checks uniformity and the
  /// expected value (exact or membership).  After a post-discard read the
  /// pool and backing agree on the observed value and nothing is pending,
  /// so the page snaps back to exact.  Returns a failure description or
  /// empty.
  std::string check_read(std::uint64_t page,
                         std::span<const std::byte> data) {
    Page& p = at(page);
    const auto b = static_cast<std::uint8_t>(data[0]);
    for (std::size_t i = 1; i < data.size(); ++i) {
      if (static_cast<std::uint8_t>(data[i]) != b) {
        return "page " + std::to_string(page) + " not uniform: byte " +
               std::to_string(i) + " is " +
               std::to_string(static_cast<int>(data[i])) + " vs " +
               std::to_string(b);
      }
    }
    if (p.pool_exact) {
      if (b != p.expect) {
        return "page " + std::to_string(page) + " read " +
               std::to_string(b) + ", expected exactly " +
               std::to_string(p.expect);
      }
      return {};
    }
    if (!p.acceptable.contains(b)) {
      return "page " + std::to_string(page) + " read " + std::to_string(b) +
             ", not in the acceptable set";
    }
    p.pool_exact = true;
    p.expect = b;
    p.last = b;
    p.acceptable.clear();
    p.acceptable.insert(b);
    return {};
  }

  /// Final byte-exact comparison against the backing store, after faults
  /// were disarmed and a clean flush_all persisted every pending write.
  void final_check(io::BackingStore& store, io::FileId file,
                   std::size_t page_size, const std::string& tag,
                   std::vector<std::string>& failures) const {
    std::vector<std::byte> buf(page_size);
    for (std::uint64_t page = 0; page < pages_.size(); ++page) {
      const Page& p = pages_[page];
      if (!p.written) continue;
      std::fill(buf.begin(), buf.end(), std::byte{0});
      static_cast<void>(store.read(file, page * page_size, buf));
      const auto b = static_cast<std::uint8_t>(buf[0]);
      for (std::size_t i = 1; i < buf.size(); ++i) {
        if (buf[i] != buf[0]) {
          failures.push_back(tag + ": backing page " + std::to_string(page) +
                             " not uniform after final flush");
          break;
        }
      }
      if (p.dirty || p.pool_exact) {
        // Pending writes were persisted by the final clean flush; exact
        // pages were already known — either way the value is pinned down.
        const std::uint8_t want = p.dirty ? p.last : p.expect;
        if (b != want) {
          failures.push_back(tag + ": backing page " + std::to_string(page) +
                             " holds " + std::to_string(b) + ", expected " +
                             std::to_string(want));
        }
      } else if (!p.acceptable.contains(b)) {
        failures.push_back(tag + ": backing page " + std::to_string(page) +
                           " holds " + std::to_string(b) +
                           ", outside the acceptable set");
      }
    }
  }

 private:
  struct Page {
    bool written = false;
    bool dirty = false;       ///< a write may still be unflushed
    bool pool_exact = true;   ///< pool reads must return `expect`
    std::uint8_t last = 0;    ///< last value written through the pool
    std::uint8_t expect = 0;  ///< expected pool byte while pool_exact
    std::set<std::uint8_t> acceptable{0};  ///< possible backing values
  };

  Page& at(std::uint64_t page) { return pages_.at(page); }

  std::vector<Page> pages_;
};

/// Oracle for the shared-file mode: per page, the set of byte values any
/// thread ever wrote (plus 0, the never-written hole value).  Exactness is
/// impossible when flush/discard interleave with other threads' writes, so
/// reads and the final backing scan check uniformity + set membership —
/// still strong enough to catch torn intra-page writes, cross-page mixing
/// and resurrected garbage.  Byte access is token-guarded by the caller;
/// this class only guards its own bookkeeping.
class SharedPageOracle {
 public:
  explicit SharedPageOracle(std::size_t pages) : pages_(pages) {}

  void on_write(std::uint64_t page, std::uint8_t v) {
    std::lock_guard<std::mutex> lock(mutex_);
    Page& p = pages_.at(page);
    p.written = true;
    p.values.insert(v);
  }

  std::string check_read(std::uint64_t page, std::span<const std::byte> data) {
    const auto b = static_cast<std::uint8_t>(data[0]);
    for (std::size_t i = 1; i < data.size(); ++i) {
      if (static_cast<std::uint8_t>(data[i]) != b) {
        return "shared page " + std::to_string(page) +
               " not uniform: byte " + std::to_string(i) + " is " +
               std::to_string(static_cast<int>(data[i])) + " vs " +
               std::to_string(b);
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (!pages_.at(page).values.contains(b)) {
      return "shared page " + std::to_string(page) + " read " +
             std::to_string(b) + ", never written by any thread";
    }
    return {};
  }

  void final_check(io::BackingStore& store, io::FileId file,
                   std::size_t page_size, const std::string& tag,
                   std::vector<std::string>& failures) const {
    std::vector<std::byte> buf(page_size);
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::uint64_t page = 0; page < pages_.size(); ++page) {
      if (!pages_[page].written) continue;
      std::fill(buf.begin(), buf.end(), std::byte{0});
      static_cast<void>(store.read(file, page * page_size, buf));
      const auto b = static_cast<std::uint8_t>(buf[0]);
      for (std::size_t i = 1; i < buf.size(); ++i) {
        if (buf[i] != buf[0]) {
          failures.push_back(tag + ": shared backing page " +
                             std::to_string(page) +
                             " not uniform after final flush");
          break;
        }
      }
      if (!pages_[page].values.contains(b)) {
        failures.push_back(tag + ": shared backing page " +
                           std::to_string(page) + " holds " +
                           std::to_string(b) +
                           ", never written by any thread");
      }
    }
  }

 private:
  struct Page {
    bool written = false;
    std::set<std::uint8_t> values{0};
  };

  mutable std::mutex mutex_;
  std::vector<Page> pages_;
};

/// Runs one seeded stress round over the given backing store (the store is
/// wrapped in a FaultStore internally).  The store must be empty/fresh.
inline StressResult run_stress(io::BackingStore& backing,
                               const StressConfig& config) {
  using io::FaultOp;

  StressResult result;
  io::FaultPlan plan = config.faults;
  plan.seed = config.seed;
  plan.torn_granularity = config.page_size;
  io::FaultStore faults(backing, plan);
  faults.arm(false);  // setup must not fault

  std::vector<io::FileId> files;
  if (config.shared_file) {
    files.push_back(faults.open("stress-shared.bin", true));
  } else {
    files.reserve(static_cast<std::size_t>(config.threads));
    for (int t = 0; t < config.threads; ++t) {
      files.push_back(
          faults.open("stress-" + std::to_string(t) + ".bin", true));
    }
  }

  // Async mode: the backend executes the I/O, the AsyncFaultStore injects
  // the same seeded plan into its completions.  Faults are deliberately
  // injected only at the completion layer (the backend wraps the *raw*
  // store, not the FaultStore) so every injected error lands inside a real
  // out-of-order completion interleaving, and FaultStats still counts them
  // (decide_async shares the FaultStore's stream, counters and arm switch).
  std::unique_ptr<io::AsyncBackingStore> backend;
  std::unique_ptr<io::AsyncFaultStore> async_faults;
  if (config.async_backend == AsyncBackend::kThreadPool) {
    backend = std::make_unique<io::ThreadPoolAsyncStore>(
        backing, std::max<std::size_t>(config.prefetch_threads, 2));
  } else if (config.async_backend == AsyncBackend::kUring) {
    auto* real = dynamic_cast<io::RealFileStore*>(&backing);
    util::check<util::ConfigError>(
        real != nullptr, "stress: kUring needs a RealFileStore backing");
    backend = std::make_unique<io::UringStore>(*real);
  }
  if (backend) {
    async_faults = std::make_unique<io::AsyncFaultStore>(*backend, faults);
  }

  io::BufferPool pool(
      faults,
      io::BufferPoolConfig{.page_size = config.page_size,
                           .capacity_pages = config.capacity_pages,
                           .shards = config.shards,
                           .async_prefetch = config.async_prefetch,
                           .prefetch_threads = config.prefetch_threads},
      async_faults.get());
  faults.arm(true);

  std::mutex failure_mutex;
  std::vector<std::string> failures;
  std::atomic<std::uint64_t> surfaced{0};
  std::vector<PageOracle> oracles(
      static_cast<std::size_t>(config.threads),
      PageOracle(config.pages_per_file));
  SharedPageOracle shared_oracle(config.pages_per_file);
  // Shared mode: per-page try-lock tokens arbitrate byte access, so page
  // bytes are never raced at the user level (TSan stays meaningful) while
  // pins, prefetches, flushes and discards of the same page interleave
  // freely across threads.  Additionally, byte WRITERS take `file_rw`
  // shared and flush/discard take it exclusive: a flush write-back reads
  // page bytes outside any pool lock, so overlapping it with a guard
  // writer's mutation of a captured dirty page would be a genuine data
  // race — the reader/writer arrangement the ROADMAP item called for.
  // Pure readers need neither (they race nobody: writers hold the page
  // token, eviction/flush only read alongside them).
  std::vector<std::mutex> page_tokens(
      config.shared_file ? config.pages_per_file : 0);
  std::shared_mutex file_rw;

  auto shared_worker = [&](int t) {
    const std::string tag =
        "seed=" + std::to_string(config.seed) + " thread=" +
        std::to_string(t) + " (shared)";
    util::Rng rng(util::SplitMix64(config.seed * 0x9e37u + t).next());
    const io::FileId file = files[0];
    std::vector<std::byte> copy(config.page_size);
    std::uint32_t write_counter = 0;
    for (std::uint64_t i = 0; i < config.ops_per_thread; ++i) {
      const std::uint64_t dice = rng.uniform_u64(100);
      const std::uint64_t page = rng.uniform_u64(config.pages_per_file);
      try {
        if (dice < 60) {
          // Byte access needs the page token; when another thread holds
          // it, turn the op into pin pressure on that very page instead.
          if (page_tokens[page].try_lock()) {
            std::lock_guard<std::mutex> token(page_tokens[page],
                                              std::adopt_lock);
            if (dice < 30) {
              {
                auto guard = pool.pin(file, page);
                std::memcpy(copy.data(), guard.data().data(),
                            config.page_size);
              }
              const std::string err = shared_oracle.check_read(page, copy);
              if (!err.empty()) {
                std::lock_guard<std::mutex> lock(failure_mutex);
                failures.push_back(tag + " op=" + std::to_string(i) + ": " +
                                   err);
              }
            } else {
              const auto v = static_cast<std::uint8_t>(
                  1 + (static_cast<std::uint32_t>(t) * 37 +
                       ++write_counter) %
                          250);
              std::shared_lock<std::shared_mutex> rw(file_rw);
              auto guard = pool.pin(file, page);
              std::memset(guard.data().data(), v, config.page_size);
              guard.mark_dirty(config.page_size);
              shared_oracle.on_write(page, v);
            }
          } else {
            static_cast<void>(pool.prefetch_range_async(file, page, 4));
          }
        } else if (dice < 72) {
          std::unique_lock<std::shared_mutex> rw(file_rw);
          pool.flush_file(file);
        } else if (dice < 76) {
          // May observe a peer's pinned page and throw — that unwinding
          // path is exactly what this mode adds.
          std::unique_lock<std::shared_mutex> rw(file_rw);
          pool.discard_file(file);
        } else if (dice < 92) {
          static_cast<void>(pool.prefetch_range_async(file, page, 8));
        } else {
          pool.drain_prefetches();
        }
      } catch (const util::IoError&) {
        surfaced.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  auto worker = [&](int t) {
    const std::string tag =
        "seed=" + std::to_string(config.seed) + " thread=" +
        std::to_string(t);
    util::Rng rng(util::SplitMix64(config.seed * 0x9e37u + t).next());
    PageOracle& oracle = oracles[static_cast<std::size_t>(t)];
    const io::FileId file = files[static_cast<std::size_t>(t)];
    std::vector<std::byte> copy(config.page_size);
    std::uint32_t write_counter = 0;
    for (std::uint64_t i = 0; i < config.ops_per_thread; ++i) {
      const std::uint64_t dice = rng.uniform_u64(100);
      const std::uint64_t page = rng.uniform_u64(config.pages_per_file);
      try {
        if (dice < 32) {
          // Read + verify one of our own pages.
          {
            auto guard = pool.pin(file, page);
            std::memcpy(copy.data(), guard.data().data(), config.page_size);
          }
          const std::string err = oracle.check_read(page, copy);
          if (!err.empty()) {
            std::lock_guard<std::mutex> lock(failure_mutex);
            failures.push_back(tag + " op=" + std::to_string(i) + ": " +
                               err);
          }
        } else if (dice < 64) {
          // Full-page write of a fresh marker value (never 0 — zero is the
          // hole/never-written marker).
          const auto v = static_cast<std::uint8_t>(
              1 + (static_cast<std::uint32_t>(t) * 37 + ++write_counter) %
                      250);
          auto guard = pool.pin(file, page);
          std::memset(guard.data().data(), v, config.page_size);
          guard.mark_dirty(config.page_size);
          oracle.on_write(page, v);
        } else if (dice < 74) {
          pool.flush_file(file);
          oracle.on_flush_ok();
        } else if (dice < 79) {
          pool.discard_file(file);
          oracle.on_discard();
        } else if (dice < 88) {
          // Readahead over our own file (async when configured).
          static_cast<void>(
              pool.prefetch_range_async(file, page, 8));
        } else if (dice < 97 && config.threads > 1) {
          // Readahead over a foreign file: cross-shard and cross-file
          // frame pressure without user-level byte access.
          const auto other = static_cast<std::size_t>(
              (static_cast<std::uint64_t>(t) + 1 +
               rng.uniform_u64(static_cast<std::uint64_t>(config.threads) -
                               1)) %
              static_cast<std::uint64_t>(config.threads));
          static_cast<void>(pool.prefetch_range_async(files[other], page, 8));
        } else {
          pool.drain_prefetches();
        }
      } catch (const util::IoError&) {
        // An injected (or induced) failure surfaced through the pool API.
        // That is the point of the exercise; the oracle state machine is
        // exception-aware (a throwing op changes nothing it would track).
        surfaced.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(config.threads));
    for (int t = 0; t < config.threads; ++t) {
      if (config.shared_file) {
        threads.emplace_back(shared_worker, t);
      } else {
        threads.emplace_back(worker, t);
      }
    }
    for (auto& th : threads) th.join();
  }

  result.ops =
      static_cast<std::uint64_t>(config.threads) * config.ops_per_thread;
  const io::FaultStats fstats = faults.stats();
  result.injected_faults = fstats.total_faults();
  result.backing_calls = fstats.total_calls();
  result.surfaced_errors = surfaced.load();
  result.failures = std::move(failures);

  // Quiesce, then validate: faults off, everything pending persisted.
  faults.arm(false);
  const std::string seed_tag = "seed=" + std::to_string(config.seed);
  try {
    pool.drain_prefetches();
    pool.flush_all();
  } catch (const util::IoError& e) {
    result.failures.push_back(seed_tag +
                              ": clean final flush threw: " + e.what());
  }
  try {
    pool.debug_validate();
  } catch (const util::IoError& e) {
    result.failures.push_back(seed_tag + ": " + e.what());
  }
  if (config.shared_file) {
    shared_oracle.final_check(backing, files[0], config.page_size,
                              seed_tag + " (shared)", result.failures);
  } else {
    for (int t = 0; t < config.threads; ++t) {
      oracles[static_cast<std::size_t>(t)].final_check(
          backing, files[static_cast<std::size_t>(t)], config.page_size,
          seed_tag + " thread=" + std::to_string(t), result.failures);
    }
  }
  return result;
}

}  // namespace clio::test_support
