// Unit coverage for the RetryingStore decorator: seeded fail_nth transient
// faults absorbed invisibly, retry budgets exhausted on persistent storms,
// permanent errors surfaced immediately (never retried), deadline budgets
// cutting retry loops short, and circuit-breaker integration (trip on
// repeated failure, fast-fail while open, recovery through probes).
#include "io/retrying_store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "io/fault_store.hpp"
#include "io/file_store.hpp"
#include "io/io_stats.hpp"
#include "io/managed_file.hpp"
#include "util/error.hpp"
#include "util/resilience.hpp"

namespace clio::io {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

/// Fast retry schedule so tests spend microseconds, not milliseconds.
RetryPolicy fast_policy(std::uint32_t max_retries = 3) {
  RetryPolicy policy;
  policy.backoff.max_retries = max_retries;
  policy.backoff.base_delay_us = 10;
  policy.backoff.max_delay_us = 100;
  return policy;
}

TEST(RetryingStore, ForwardsVerbatimWithoutFaults) {
  SimFileStore inner(2, 64 * 1024);
  RetryingStore store(inner, fast_policy());
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("hello"));
  std::vector<std::byte> buf(5);
  EXPECT_EQ(store.read(id, 0, buf), 5u);
  EXPECT_EQ(store.size(id), 5u);
  EXPECT_TRUE(store.exists("f"));
  EXPECT_EQ(store.lookup("f"), id);
  const RetryStats stats = store.stats();
  EXPECT_EQ(stats.attempts, 2u);  // one write + one read, no re-issues
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.absorbed, 0u);
  store.close(id);
}

TEST(RetryingStore, AbsorbsSeededFailNthTransientError) {
  SimFileStore inner(2, 64 * 1024);
  FaultPlan plan;
  plan.fail_nth[static_cast<std::size_t>(FaultOp::kRead)] = 2;
  FaultStore faulty(inner, plan);
  RetryingStore store(faulty, fast_policy());
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abcdef"));
  std::vector<std::byte> buf(6);
  EXPECT_EQ(store.read(id, 0, buf), 6u);  // inner call 1: clean
  EXPECT_EQ(store.read(id, 0, buf), 6u);  // inner call 2 faults, 3 retries
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(buf.data()), 6),
            "abcdef");
  const RetryStats stats = store.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.absorbed, 1u);
  EXPECT_EQ(stats.exhausted, 0u);
  EXPECT_EQ(stats.permanent, 0u);
  // The fault genuinely fired underneath.
  EXPECT_EQ(faulty.stats().faults[static_cast<std::size_t>(FaultOp::kRead)],
            1u);
}

TEST(RetryingStore, AbsorbsForcedTransientBurstsOnEveryDataOp) {
  SimFileStore inner(2, 64 * 1024);
  FaultStore faulty(inner);
  RetryingStore store(faulty, fast_policy());
  const FileId id = store.open("f", true);

  faulty.fail_next(FaultOp::kWrite, 2);
  store.write(id, 0, as_bytes("payload!"));  // 2 faults absorbed

  faulty.fail_next(FaultOp::kRead, 1);
  std::vector<std::byte> buf(8);
  EXPECT_EQ(store.read(id, 0, buf), 8u);

  faulty.fail_next(FaultOp::kWritev, 1);
  const std::string a = "1234", b = "5678";
  const std::span<const std::byte> parts[] = {as_bytes(a), as_bytes(b)};
  store.writev(id, 0, parts);

  faulty.fail_next(FaultOp::kReadv, 1);
  std::vector<std::byte> p1(4), p2(4);
  std::span<std::byte> rparts[] = {p1, p2};
  EXPECT_EQ(store.readv(id, 0, rparts), 8u);

  const RetryStats stats = store.stats();
  EXPECT_EQ(stats.retries, 5u);
  EXPECT_EQ(stats.absorbed, 4u);  // one per op class
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(RetryingStore, SurfacesTransientErrorOnceRetriesAreExhausted) {
  SimFileStore inner(2, 64 * 1024);
  FaultStore faulty(inner);
  RetryingStore store(faulty, fast_policy(/*max_retries=*/2));
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("x"));
  faulty.fail_next(FaultOp::kRead, 100);  // storm outlasts the budget
  std::vector<std::byte> buf(1);
  EXPECT_THROW(static_cast<void>(store.read(id, 0, buf)),
               util::TransientIoError);
  const RetryStats stats = store.stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.exhausted, 1u);
  EXPECT_EQ(stats.absorbed, 0u);
}

TEST(RetryingStore, NeverRetriesPermanentErrors) {
  SimFileStore inner(2, 64 * 1024);
  FaultPlan plan;
  plan.torn_write_prob = 1.0;  // every write tears: permanent by contract
  FaultStore faulty(inner, plan);
  RetryingStore store(faulty, fast_policy());
  const FileId id = store.open("f", true);
  EXPECT_THROW(store.write(id, 0, as_bytes("doomed")), util::IoError);
  const RetryStats stats = store.stats();
  EXPECT_EQ(stats.attempts, 1u);  // exactly one inner call — no blind re-issue
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.permanent, 1u);
  EXPECT_EQ(faulty.stats().torn_writes, 1u);
}

TEST(RetryingStore, SameSeedReplaysTheSameOutcomes) {
  for (int round = 0; round < 2; ++round) {
    SimFileStore inner(2, 64 * 1024);
    FaultPlan plan;
    plan.seed = 77;
    plan.fail_prob[static_cast<std::size_t>(FaultOp::kRead)] = 0.3;
    FaultStore faulty(inner, plan);
    RetryPolicy policy = fast_policy();
    policy.seed = 99;
    RetryingStore store(faulty, policy);
    const FileId id = store.open("f", true);
    store.write(id, 0, as_bytes("r"));
    std::vector<std::byte> buf(1);
    std::uint64_t served = 0;
    for (int i = 0; i < 50; ++i) {
      try {
        served += store.read(id, 0, buf);
      } catch (const util::TransientIoError&) {
      }
    }
    static std::uint64_t first_served = 0;
    static RetryStats first_stats;
    if (round == 0) {
      first_served = served;
      first_stats = store.stats();
      EXPECT_GT(store.stats().retries, 0u);
    } else {
      EXPECT_EQ(served, first_served);
      EXPECT_EQ(store.stats().retries, first_stats.retries);
      EXPECT_EQ(store.stats().absorbed, first_stats.absorbed);
      EXPECT_EQ(store.stats().exhausted, first_stats.exhausted);
    }
  }
}

TEST(RetryingStore, AmbientDeadlineCutsTheRetryLoopShort) {
  SimFileStore inner(2, 64 * 1024);
  FaultStore faulty(inner);
  RetryPolicy policy;
  policy.backoff.max_retries = 100;
  policy.backoff.base_delay_us = 50'000;  // 50ms per retry: never fits
  policy.backoff.max_delay_us = 50'000;
  RetryingStore store(faulty, policy);
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("x"));
  faulty.fail_next(FaultOp::kRead, 100);
  std::vector<std::byte> buf(1);
  util::DeadlineScope scope(util::Deadline::after_ms(5));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(static_cast<void>(store.read(id, 0, buf)), util::TimeoutError);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(500));  // gave up, not slept
  EXPECT_EQ(store.stats().deadline_expiries, 1u);
}

TEST(RetryingStore, PerOpDeadlineAppliesWithoutAnAmbientScope) {
  SimFileStore inner(2, 64 * 1024);
  FaultStore faulty(inner);
  RetryPolicy policy;
  policy.backoff.max_retries = 100;
  policy.backoff.base_delay_us = 50'000;
  policy.backoff.max_delay_us = 50'000;
  policy.op_deadline_ms = 5;
  RetryingStore store(faulty, policy);
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("x"));
  faulty.fail_next(FaultOp::kRead, 100);
  std::vector<std::byte> buf(1);
  EXPECT_THROW(static_cast<void>(store.read(id, 0, buf)), util::TimeoutError);
  EXPECT_EQ(store.stats().deadline_expiries, 1u);
}

TEST(RetryingStore, TripsTheBreakerAndFastFailsWhileOpen) {
  SimFileStore inner(2, 64 * 1024);
  FaultStore faulty(inner);
  util::CircuitBreakerConfig cfg;
  cfg.failure_threshold = 4;
  cfg.open_cooldown_ms = 60'000;  // stays open for the whole test
  util::CircuitBreaker breaker(cfg);
  RetryingStore store(faulty, fast_policy(/*max_retries=*/1), &breaker);
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("x"));
  faulty.fail_next(FaultOp::kRead, 1000);
  std::vector<std::byte> buf(1);
  // Each read issues 2 attempts (1 + 1 retry); the 2nd read's retry is the
  // 4th consecutive failure and trips the breaker.
  EXPECT_THROW(static_cast<void>(store.read(id, 0, buf)),
               util::TransientIoError);
  EXPECT_THROW(static_cast<void>(store.read(id, 0, buf)),
               util::TransientIoError);
  EXPECT_EQ(breaker.state(), util::CircuitBreaker::State::kOpen);
  // Open: the next call fast-fails without touching the store.
  const std::uint64_t calls_before = faulty.stats().total_calls();
  EXPECT_THROW(static_cast<void>(store.read(id, 0, buf)),
               util::TransientIoError);
  EXPECT_EQ(faulty.stats().total_calls(), calls_before);
  const RetryStats stats = store.stats();
  EXPECT_EQ(stats.fast_fails, 1u);
  EXPECT_EQ(breaker.stats().trips, 1u);
}

TEST(RetryingStore, BreakerRecoversThroughHalfOpenProbes) {
  SimFileStore inner(2, 64 * 1024);
  FaultStore faulty(inner);
  util::CircuitBreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.open_cooldown_ms = 10;
  cfg.half_open_successes = 1;
  util::CircuitBreaker breaker(cfg);
  RetryingStore store(faulty, fast_policy(/*max_retries=*/0), &breaker);
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("x"));
  faulty.fail_next(FaultOp::kRead, 2);
  std::vector<std::byte> buf(1);
  EXPECT_THROW(static_cast<void>(store.read(id, 0, buf)),
               util::TransientIoError);
  EXPECT_THROW(static_cast<void>(store.read(id, 0, buf)),
               util::TransientIoError);
  EXPECT_EQ(breaker.state(), util::CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Cooldown elapsed; the fault burst is spent, so the probe succeeds and
  // closes the breaker.
  EXPECT_EQ(store.read(id, 0, buf), 1u);
  EXPECT_EQ(breaker.state(), util::CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().probes, 1u);
}

TEST(RetryingStore, PermanentErrorsCountAsBreakerSuccesses) {
  SimFileStore inner(2, 64 * 1024);
  FaultPlan plan;
  plan.torn_write_prob = 1.0;
  FaultStore faulty(inner, plan);
  util::CircuitBreakerConfig cfg;
  cfg.failure_threshold = 2;
  util::CircuitBreaker breaker(cfg);
  RetryingStore store(faulty, fast_policy(), &breaker);
  const FileId id = store.open("f", true);
  for (int i = 0; i < 10; ++i) {
    EXPECT_THROW(store.write(id, 0, as_bytes("doomed")), util::IoError);
  }
  // The store answered definitively every time: infrastructure healthy.
  EXPECT_EQ(breaker.state(), util::CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().trips, 0u);
}

TEST(RetryingStore, MirrorsResilienceCountersIntoIoStats) {
  SimFileStore inner(2, 64 * 1024);
  FaultStore faulty(inner);
  RetryingStore store(faulty, fast_policy());
  IoStats io_stats;
  store.bind_stats(&io_stats);
  const FileId id = store.open("f", true);
  faulty.fail_next(FaultOp::kWrite, 1);
  store.write(id, 0, as_bytes("x"));
  const ResilienceCounters r = io_stats.resilience();
  EXPECT_EQ(r.retries, 1u);
  EXPECT_EQ(r.absorbed_faults, 1u);
  EXPECT_EQ(r.breaker_trips, 0u);
}

TEST(RetryingStore, ComposesUnderManagedFileSystem) {
  // The end-to-end decorator chain the server uses:
  //   SimFileStore <- FaultStore <- RetryingStore <- ManagedFileSystem.
  auto sim = std::make_unique<SimFileStore>(2, 64 * 1024);
  auto faulty = std::make_unique<FaultStore>(std::move(sim));
  FaultStore* fault_handle = faulty.get();
  auto retrying =
      std::make_unique<RetryingStore>(std::move(faulty), fast_policy());
  RetryingStore* retry_handle = retrying.get();
  ManagedFsOptions opts;
  ManagedFileSystem fs(std::move(retrying), opts);
  retry_handle->bind_stats(&fs.stats());

  const std::string body(3 * 4096, 'Q');
  {
    ManagedFile f = fs.open("doc", OpenMode::kCreate);
    f.write(as_bytes(body));
    f.close();
  }
  fs.drop_caches();

  fault_handle->fail_next(FaultOp::kRead, 1);
  fault_handle->fail_next(FaultOp::kReadv, 1);
  ManagedFile f = fs.open("doc", OpenMode::kRead);
  std::vector<std::byte> buf(body.size());
  f.read_exact(buf);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(buf.data()), buf.size()),
            body);
  f.close();
  EXPECT_GE(retry_handle->stats().absorbed, 1u);
  EXPECT_GE(fs.stats().resilience().retries, 1u);
}

}  // namespace
}  // namespace clio::io
