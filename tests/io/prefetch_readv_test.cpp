// Coverage for the coalesced + asynchronous read path: BackingStore::readv
// batching in prefetch_range, EOF clamping, failure unwinding, and the
// background prefetch workers.  The concurrency cases double as TSan
// targets in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "io/buffer_pool.hpp"
#include "io/file_store.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"

namespace clio::io {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

/// In-memory BackingStore that counts read/readv calls and can inject read
/// failures, for asserting how prefetch_range batches its backing accesses.
/// Counters are atomic because async-prefetch tests exercise it from the
/// pool's worker threads.
class CountingReadStore final : public BackingStore {
 public:
  FileId open(const std::string& name, bool create) override {
    if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
    util::check<util::IoError>(create, "CountingReadStore: no such file");
    const auto id = static_cast<FileId>(files_.size());
    files_.emplace_back();
    by_name_.emplace(name, id);
    return id;
  }
  void close(FileId) override {}
  [[nodiscard]] std::uint64_t size(FileId id) const override {
    return files_.at(id).size();
  }
  void truncate(FileId id, std::uint64_t new_size) override {
    files_.at(id).resize(new_size);
  }
  std::size_t read(FileId id, std::uint64_t offset,
                   std::span<std::byte> out) override {
    maybe_fail();
    read_calls++;
    return copy_out(id, offset, out);
  }
  std::size_t readv(FileId id, std::uint64_t offset,
                    std::span<const std::span<std::byte>> parts) override {
    maybe_fail();
    readv_calls++;
    std::size_t total = 0;
    for (const auto& part : parts) {
      const std::size_t n = copy_out(id, offset + total, part);
      total += n;
      if (n < part.size()) break;
    }
    return total;
  }
  void write(FileId id, std::uint64_t offset,
             std::span<const std::byte> data) override {
    auto& file = files_.at(id);
    if (offset + data.size() > file.size()) file.resize(offset + data.size());
    std::memcpy(file.data() + offset, data.data(), data.size());
  }
  [[nodiscard]] bool exists(const std::string& name) const override {
    return by_name_.contains(name);
  }
  [[nodiscard]] FileId lookup(const std::string& name) const override {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? kInvalidFile : it->second;
  }
  void remove(const std::string& name) override { by_name_.erase(name); }

  std::atomic<std::uint64_t> read_calls{0};
  std::atomic<std::uint64_t> readv_calls{0};
  std::atomic<int> fail_reads{0};  ///< next N read/readv calls throw

 private:
  void maybe_fail() {
    if (fail_reads.load() > 0 && fail_reads.fetch_sub(1) > 0) {
      throw util::IoError("CountingReadStore: injected read failure");
    }
  }

  std::size_t copy_out(FileId id, std::uint64_t offset,
                       std::span<std::byte> out) {
    const auto& data = files_.at(id);
    if (offset >= data.size()) return 0;
    const std::size_t n =
        std::min<std::size_t>(out.size(), data.size() - offset);
    std::memcpy(out.data(), data.data() + offset, n);
    return n;
  }

  std::vector<std::vector<std::byte>> files_;
  std::unordered_map<std::string, FileId> by_name_;
};

/// `pages` full pages of recognizable per-page content plus `tail_bytes`
/// of 'T' after the last full page.
FileId make_file(CountingReadStore& store, std::size_t page_size,
                 std::size_t pages, std::size_t tail_bytes = 0) {
  const FileId file = store.open("data.bin", true);
  std::string content;
  for (std::size_t p = 0; p < pages; ++p) {
    content += std::string(page_size, char('a' + p % 26));
  }
  content += std::string(tail_bytes, 'T');
  store.write(file, 0, as_bytes(content));
  return file;
}

// ------------------------------------------------------------ batching ----

TEST(PrefetchReadv, SequentialWindowIssuesOneGatherRead) {
  CountingReadStore store;
  const FileId file = make_file(store, 256, 16);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4});
  constexpr std::size_t kWindow = 16;
  EXPECT_EQ(pool.prefetch_range(file, 0, kWindow), kWindow);
  // The whole sequential window must go out as a single vectored gather —
  // not one backing read per page, the pre-coalescing behaviour.
  EXPECT_EQ(store.readv_calls, 1u);
  EXPECT_EQ(store.read_calls, 0u);
  // The batching ratio is observable from PoolStats alone now, not just
  // from instrumented test stores: 16 pages over 1 backing call.
  EXPECT_EQ(pool.stats().gather_read_calls, 1u);
  EXPECT_EQ(pool.stats().gather_read_pages, kWindow);
  EXPECT_EQ(pool.resident_pages(), kWindow);
  EXPECT_EQ(pool.stats().prefetches, kWindow);
  for (std::uint64_t p = 0; p < kWindow; ++p) {
    auto g = pool.pin(file, p);
    EXPECT_EQ(static_cast<char>(g.data()[0]), char('a' + p % 26)) << p;
    EXPECT_EQ(g.valid_bytes(), 256u);
  }
  EXPECT_EQ(pool.stats().hits, kWindow);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST(PrefetchReadv, ResidentPagesSplitTheWindowIntoRuns) {
  CountingReadStore store;
  const FileId file = make_file(store, 256, 16);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4});
  EXPECT_TRUE(pool.prefetch(file, 4));  // single-page path: one read()
  EXPECT_EQ(store.read_calls, 1u);
  // Page 4 is resident, so the window splits into runs [0..3] and [5..9].
  EXPECT_EQ(pool.prefetch_range(file, 0, 10), 9u);
  EXPECT_EQ(store.readv_calls, 2u);
  EXPECT_EQ(pool.resident_pages(), 10u);
}

TEST(PrefetchReadv, CoalesceLimitBoundsRunLength) {
  CountingReadStore store;
  const FileId file = make_file(store, 256, 16);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 1,
                                          .coalesce_pages = 4});
  EXPECT_EQ(pool.prefetch_range(file, 0, 16), 16u);
  EXPECT_EQ(store.readv_calls, 4u);  // 16 pages / 4 per gather
  EXPECT_EQ(pool.stats().gather_read_calls, 4u);
  EXPECT_EQ(pool.stats().gather_read_pages, 16u);
}

// ---------------------------------------------------------- EOF clamps ----

TEST(PrefetchReadv, WindowIsClampedToEndOfFile) {
  CountingReadStore store;
  // 5 full pages plus a 100-byte tail page: pages 0..5 exist, 6+ do not.
  const FileId file = make_file(store, 256, 5, 100);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4});
  EXPECT_EQ(pool.prefetch_range(file, 4, 8), 2u);  // pages 4 and 5 only
  EXPECT_EQ(store.readv_calls, 1u);
  EXPECT_FALSE(pool.contains(file, 6));
  EXPECT_EQ(pool.resident_pages(), 2u);
  auto tail = pool.pin(file, 5);
  EXPECT_EQ(tail.valid_bytes(), 100u);
  EXPECT_EQ(static_cast<char>(tail.data()[99]), 'T');
  EXPECT_EQ(tail.data()[100], std::byte{0});  // zero past the valid extent
}

TEST(PrefetchReadv, WindowEntirelyPastEofLoadsNothing) {
  CountingReadStore store;
  const FileId file = make_file(store, 256, 4);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4});
  EXPECT_EQ(pool.prefetch_range(file, 100, 8), 0u);
  EXPECT_EQ(store.readv_calls + store.read_calls, 0u);
  EXPECT_EQ(pool.resident_pages(), 0u);
  // An empty file never prefetches either.
  const FileId empty = store.open("empty.bin", true);
  EXPECT_EQ(pool.prefetch_range(empty, 0, 8), 0u);
  EXPECT_EQ(pool.resident_pages(), 0u);
}

// ------------------------------------------------------------ failures ----

TEST(PrefetchReadv, FailedGatherLeavesNoHalfValidFramesResident) {
  CountingReadStore store;
  const FileId file = make_file(store, 256, 8);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4});
  store.fail_reads = 1;
  EXPECT_THROW(static_cast<void>(pool.prefetch_range(file, 0, 8)),
               util::IoError);
  EXPECT_EQ(pool.resident_pages(), 0u);
  // Stats stay exact: nothing was loaded, so nothing counts as prefetched.
  EXPECT_EQ(pool.stats().prefetches, 0u);
  pool.debug_validate();  // the unwind left no leaked latch or frame
  // The frames were returned to the pool: a retry loads everything fresh.
  EXPECT_EQ(pool.prefetch_range(file, 0, 8), 8u);
  EXPECT_EQ(pool.stats().prefetches, 8u);
  for (std::uint64_t p = 0; p < 8; ++p) {
    auto g = pool.pin(file, p);
    EXPECT_EQ(static_cast<char>(g.data()[0]), char('a' + p)) << p;
  }
}

TEST(PrefetchReadv, FailureInSecondRunKeepsFirstRunResident) {
  CountingReadStore store;
  const FileId file = make_file(store, 256, 12);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 1,
                                          .coalesce_pages = 4});
  // A completed gather's pages are published and stay resident; a later
  // failed gather must unwind only its own claimed frames.
  EXPECT_EQ(pool.prefetch_range(file, 0, 4), 4u);  // run 1 resident
  store.fail_reads = 1;
  EXPECT_THROW(static_cast<void>(pool.prefetch_range(file, 4, 8)),
               util::IoError);
  EXPECT_EQ(pool.resident_pages(), 4u);  // only run 1 remains
  for (std::uint64_t p = 0; p < 4; ++p) EXPECT_TRUE(pool.contains(file, p));
  for (std::uint64_t p = 4; p < 12; ++p) EXPECT_FALSE(pool.contains(file, p));
}

// ----------------------------------------------------------- contention ----

TEST(PrefetchReadv, ConcurrentPrefetchAndPinOfSameRangeStayCoherent) {
  util::TempDir dir;
  RealFileStore store(dir.path());
  const FileId file = store.open("data.bin", true);
  constexpr std::uint64_t kPages = 64;
  std::string content;
  for (std::uint64_t p = 0; p < kPages; ++p) {
    content += std::string(256, char('a' + p % 26));
  }
  store.write(file, 0, as_bytes(content));
  // Pool smaller than the file: prefetch and demand pins contend for
  // frames and evict each other's pages while gathers are in flight.
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4});
  std::atomic<int> bad_bytes{0};
  std::atomic<bool> stop{false};
  std::thread prefetcher([&] {
    while (!stop.load()) {
      for (std::uint64_t p = 0; p < kPages; p += 8) {
        static_cast<void>(pool.prefetch_range(file, p, 8));
      }
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      util::Rng rng(100 + t);
      for (int i = 0; i < 3000; ++i) {
        const std::uint64_t page = rng.uniform_u64(kPages);
        auto g = pool.pin(file, page);
        if (static_cast<char>(g.data()[0]) != char('a' + page % 26)) {
          bad_bytes++;
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  prefetcher.join();
  EXPECT_EQ(bad_bytes.load(), 0);
}

// ------------------------------------------------------- async prefetch ----

TEST(AsyncPrefetch, LoadsInBackgroundAndDrainsOnDemand) {
  CountingReadStore store;
  const FileId file = make_file(store, 256, 16);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4,
                                          .async_prefetch = true,
                                          .prefetch_threads = 2});
  EXPECT_EQ(pool.prefetch_range_async(file, 0, 16), 0u);  // queued, not done
  pool.drain_prefetches();
  EXPECT_EQ(pool.resident_pages(), 16u);
  EXPECT_EQ(pool.stats().prefetches, 16u);
  EXPECT_GE(store.readv_calls, 1u);
  for (std::uint64_t p = 0; p < 16; ++p) {
    auto g = pool.pin(file, p);
    EXPECT_EQ(static_cast<char>(g.data()[0]), char('a' + p % 26)) << p;
  }
}

TEST(AsyncPrefetch, SyncFallbackWhenDisabled) {
  CountingReadStore store;
  const FileId file = make_file(store, 256, 8);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4});
  // Without workers the async entry point degrades to the inline path and
  // reports what it loaded.
  EXPECT_EQ(pool.prefetch_range_async(file, 0, 8), 8u);
  EXPECT_EQ(pool.resident_pages(), 8u);
  pool.drain_prefetches();  // no-op, must not block
}

TEST(AsyncPrefetch, FlushDrainsTheQueueFirst) {
  CountingReadStore store;
  const FileId file = make_file(store, 256, 16);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4,
                                          .async_prefetch = true,
                                          .prefetch_threads = 1});
  {
    auto g = pool.pin(file, 0);
    g.data()[0] = static_cast<std::byte>('Z');
    g.mark_dirty(256);
  }
  static_cast<void>(pool.prefetch_range_async(file, 8, 8));
  pool.flush_all();  // must drain the readahead queue before flushing
  // Dirty page 0 plus the 8 prefetched pages are all resident afterwards.
  EXPECT_EQ(pool.resident_pages(), 9u);
  for (std::uint64_t p = 8; p < 16; ++p) EXPECT_TRUE(pool.contains(file, p));
  std::vector<std::byte> b(1);
  store.read(file, 0, b);
  EXPECT_EQ(static_cast<char>(b[0]), 'Z');
}

TEST(AsyncPrefetch, BackgroundFailureIsSwallowedAndLeavesPoolClean) {
  CountingReadStore store;
  const FileId file = make_file(store, 256, 8);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4,
                                          .async_prefetch = true,
                                          .prefetch_threads = 1});
  store.fail_reads = 1;
  static_cast<void>(pool.prefetch_range_async(file, 0, 8));
  pool.drain_prefetches();  // worker hit the injected failure and unwound
  EXPECT_EQ(pool.resident_pages(), 0u);
  // The reader sees the file normally afterwards.
  auto g = pool.pin(file, 0);
  EXPECT_EQ(static_cast<char>(g.data()[0]), 'a');
}

TEST(AsyncPrefetch, FlushStillDrainsWhenEveryWorkerGatherFails) {
  CountingReadStore store;
  const FileId file = make_file(store, 256, 32);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 64,
                                          .shards = 4,
                                          .async_prefetch = true,
                                          .prefetch_threads = 2});
  // Dirty a page, then queue readahead that will all fail in the workers.
  {
    auto g = pool.pin(file, 0);
    g.data()[0] = static_cast<std::byte>('W');
    g.mark_dirty(256);
  }
  store.fail_reads = 1000;
  for (std::uint64_t p = 0; p < 32; p += 8) {
    static_cast<void>(pool.prefetch_range_async(file, p, 8));
  }
  // flush_file must drain the failing queue (bounded, no hang) and still
  // persist the dirty page; background failures never surface here.
  pool.flush_file(file);
  store.fail_reads = 0;
  std::vector<std::byte> b(1);
  store.read(file, 0, b);
  EXPECT_EQ(static_cast<char>(b[0]), 'W');
  pool.debug_validate();
}

TEST(AsyncPrefetch, FailedBackgroundReadLeavesPageColdAndDemandReports) {
  CountingReadStore store;
  const FileId file = make_file(store, 256, 8);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4,
                                          .async_prefetch = true,
                                          .prefetch_threads = 1});
  // First failure hits the worker's gather: swallowed, pages stay cold —
  // never half-valid.
  store.fail_reads = 2;
  static_cast<void>(pool.prefetch_range_async(file, 0, 8));
  pool.drain_prefetches();
  for (std::uint64_t p = 0; p < 8; ++p) EXPECT_FALSE(pool.contains(file, p));
  pool.debug_validate();
  // Second failure hits the demand fault, which *does* report the error.
  EXPECT_THROW(static_cast<void>(pool.pin(file, 0)), util::IoError);
  pool.debug_validate();
  // With the fault gone the page loads normally — nothing was wedged.
  auto g = pool.pin(file, 0);
  EXPECT_EQ(static_cast<char>(g.data()[0]), 'a');
}

TEST(AsyncPrefetch, DestructorDrainsWithFailingWorkers) {
  CountingReadStore store;
  const FileId file = make_file(store, 256, 32);
  {
    BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                            .capacity_pages = 64,
                                            .shards = 4,
                                            .async_prefetch = true,
                                            .prefetch_threads = 2});
    store.fail_reads = 1000;
    for (std::uint64_t p = 0; p < 32; p += 4) {
      static_cast<void>(pool.prefetch_range_async(file, p, 4));
    }
    // Destructor: quiesce workers mid-failure, then best-effort flush.
    // Must join cleanly — ASan/TSan veto leaked threads or frames.
  }
  store.fail_reads = 0;
  SUCCEED();
}

TEST(AsyncPrefetch, ConcurrentAsyncPrefetchAndPinsStayCoherent) {
  util::TempDir dir;
  RealFileStore store(dir.path());
  const FileId file = store.open("data.bin", true);
  constexpr std::uint64_t kPages = 64;
  std::string content;
  for (std::uint64_t p = 0; p < kPages; ++p) {
    content += std::string(256, char('a' + p % 26));
  }
  store.write(file, 0, as_bytes(content));
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4,
                                          .async_prefetch = true,
                                          .prefetch_threads = 2});
  std::atomic<int> bad_bytes{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      util::Rng rng(10 + t);
      for (int i = 0; i < 2000; ++i) {
        const std::uint64_t page = rng.uniform_u64(kPages);
        static_cast<void>(pool.prefetch_range_async(file, page, 4));
        auto g = pool.pin(file, page);
        if (static_cast<char>(g.data()[0]) != char('a' + page % 26)) {
          bad_bytes++;
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  pool.drain_prefetches();
  EXPECT_EQ(bad_bytes.load(), 0);
}

}  // namespace
}  // namespace clio::io
