#include "io/disk_array.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"

namespace clio::io {
namespace {

TEST(DiskArray, RejectsBadConfig) {
  EXPECT_THROW(DiskArray(0, 4096), util::ConfigError);
  EXPECT_THROW(DiskArray(4, 0), util::ConfigError);
}

TEST(DiskArray, SmallRequestMapsToSingleDisk) {
  DiskArray array(4, 64 * 1024);
  const auto extents = array.map(0, 4096);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].disk, 0u);
  EXPECT_EQ(extents[0].disk_offset, 0u);
  EXPECT_EQ(extents[0].length, 4096u);
}

TEST(DiskArray, RequestSpanningStripesSplits) {
  DiskArray array(4, 1024);
  const auto extents = array.map(512, 1024);  // crosses stripe 0 -> 1
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0].disk, 0u);
  EXPECT_EQ(extents[0].disk_offset, 512u);
  EXPECT_EQ(extents[0].length, 512u);
  EXPECT_EQ(extents[1].disk, 1u);
  EXPECT_EQ(extents[1].disk_offset, 0u);
  EXPECT_EQ(extents[1].length, 512u);
}

TEST(DiskArray, RoundRobinWrapsToFirstDisk) {
  DiskArray array(2, 1024);
  // Stripe 2 lives on disk 0 at disk offset 1024.
  const auto extents = array.map(2048, 100);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].disk, 0u);
  EXPECT_EQ(extents[0].disk_offset, 1024u);
}

TEST(DiskArray, MapCoversRequestExactly) {
  DiskArray array(3, 777);
  const std::uint64_t offset = 1234;
  const std::uint64_t length = 99999;
  const auto extents = array.map(offset, length);
  std::uint64_t total = 0;
  for (const auto& e : extents) total += e.length;
  EXPECT_EQ(total, length);
}

TEST(DiskArray, ZeroLengthSeekMapsToOwningDisk) {
  DiskArray array(4, 1024);
  const auto extents = array.map(5000, 0);  // stripe 4 -> disk 0
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].disk, 0u);
  EXPECT_EQ(extents[0].length, 0u);
}

TEST(DiskArray, LargeRequestUsesAllDisks) {
  DiskArray array(4, 1024);
  array.access_ms(0, 16 * 1024);
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_GT(array.disk(d).bytes_served(), 0u) << "disk " << d;
  }
}

TEST(DiskArray, ParallelServiceFasterThanSerial) {
  // The same large transfer on a 1-disk vs 8-disk array: the striped array
  // overlaps transfer, so the request latency must drop.
  DiskArray one(1, 64 * 1024);
  DiskArray eight(8, 64 * 1024);
  const double t1 = one.access_ms(0, 8 * 1024 * 1024);
  const double t8 = eight.access_ms(0, 8 * 1024 * 1024);
  EXPECT_LT(t8, t1 * 0.5);
}

TEST(DiskArray, SmallRequestsGainNothingFromMoreDisks) {
  // The Figure-4 mechanism: 4 KiB requests fit in one stripe, so per-request
  // latency is disk-bound regardless of array width.
  DiskArray two(2, 64 * 1024);
  DiskArray thirtytwo(32, 64 * 1024);
  const double t2 = two.access_ms(0, 4096);
  const double t32 = thirtytwo.access_ms(0, 4096);
  EXPECT_NEAR(t2, t32, t2 * 0.01);
}

// Parameterized sweep: byte conservation and busy accounting across widths.
class DiskArrayWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DiskArrayWidth, BytesConservedAcrossDisks) {
  DiskArray array(GetParam(), 4096);
  const std::uint64_t total_bytes = 1 << 20;
  array.access_ms(12345, total_bytes);
  std::uint64_t served = 0;
  for (std::size_t d = 0; d < array.num_disks(); ++d) {
    served += array.disk(d).bytes_served();
  }
  EXPECT_EQ(served, total_bytes);
  EXPECT_GT(array.total_busy_ms(), 0.0);
  array.reset_counters();
  EXPECT_DOUBLE_EQ(array.total_busy_ms(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, DiskArrayWidth,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace clio::io
