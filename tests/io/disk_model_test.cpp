#include "io/disk_model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace clio::io {
namespace {

TEST(DiskModel, RejectsBadParams) {
  DiskParams p;
  p.rpm = 0;
  EXPECT_THROW(DiskModel{p}, util::ConfigError);
  p = DiskParams{};
  p.transfer_mb_s = -1;
  EXPECT_THROW(DiskModel{p}, util::ConfigError);
  p = DiskParams{};
  p.avg_seek_ms = 0.1;
  p.min_seek_ms = 5.0;
  EXPECT_THROW(DiskModel{p}, util::ConfigError);
  p = DiskParams{};
  p.capacity_bytes = 0;
  EXPECT_THROW(DiskModel{p}, util::ConfigError);
}

TEST(DiskModel, ZeroDistanceSeekIsFree) {
  DiskModel m{DiskParams{}};
  EXPECT_DOUBLE_EQ(m.seek_time_ms(1000, 1000), 0.0);
}

TEST(DiskModel, SeekGrowsWithDistanceConcavely) {
  DiskModel m{DiskParams{}};
  const double near = m.seek_time_ms(0, 1 << 20);
  const double mid = m.seek_time_ms(0, 1ULL << 30);
  const double far = m.seek_time_ms(0, 32ULL << 30);
  EXPECT_GT(near, 0.0);
  EXPECT_GT(mid, near);
  EXPECT_GT(far, mid);
  // Concavity: doubling distance less than doubles cost at the high end.
  const double half_far = m.seek_time_ms(0, 16ULL << 30);
  EXPECT_LT(far, 2.0 * half_far);
}

TEST(DiskModel, SeekIsSymmetric) {
  DiskModel m{DiskParams{}};
  EXPECT_DOUBLE_EQ(m.seek_time_ms(0, 12345678), m.seek_time_ms(12345678, 0));
}

TEST(DiskModel, RotationalLatencyMatchesRpm) {
  DiskParams p;
  p.rpm = 7200;
  DiskModel m{p};
  EXPECT_NEAR(m.rotational_latency_ms(), 4.1667, 1e-3);
  p.rpm = 15000;
  DiskModel fast{p};
  EXPECT_NEAR(fast.rotational_latency_ms(), 2.0, 1e-9);
}

TEST(DiskModel, TransferTimeLinearInBytes) {
  DiskParams p;
  p.transfer_mb_s = 50.0;  // 50 MB/s -> 1 MiB in ~20.97 ms? no: 1e6 B in 20ms
  DiskModel m{p};
  EXPECT_NEAR(m.transfer_time_ms(1'000'000), 20.0, 1e-9);
  EXPECT_NEAR(m.transfer_time_ms(2'000'000), 40.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.transfer_time_ms(0), 0.0);
}

TEST(DiskModel, PureSeekSkipsRotation) {
  DiskModel m{DiskParams{}};
  const double pure_seek = m.service_time_ms(0, 1 << 20, 0);
  const double with_read = m.service_time_ms(0, 1 << 20, 4096);
  EXPECT_GT(with_read, pure_seek + m.rotational_latency_ms() * 0.99);
}

TEST(DiskModel, ServiceTimeIncludesOverhead) {
  DiskParams p;
  p.overhead_ms = 0.5;
  DiskModel m{p};
  EXPECT_GE(m.service_time_ms(0, 0, 0), 0.5);
}

TEST(SimDisk, HeadAdvancesToEndOfRequest) {
  SimDisk disk{DiskParams{}};
  disk.access_ms(1000, 500);
  EXPECT_EQ(disk.head_position(), 1500u);
}

TEST(SimDisk, SequentialCheaperThanRandom) {
  SimDisk seq{DiskParams{}};
  SimDisk rnd{DiskParams{}};
  double seq_ms = 0.0;
  double rnd_ms = 0.0;
  std::uint64_t pos = 0;
  for (int i = 0; i < 64; ++i) {
    seq_ms += seq.access_ms(pos, 4096);
    pos += 4096;
    rnd_ms += rnd.access_ms((i * 7919ULL) << 22, 4096);
  }
  EXPECT_LT(seq_ms, rnd_ms * 0.5);
}

TEST(SimDisk, CountsRequestsAndBytes) {
  SimDisk disk{DiskParams{}};
  disk.access_ms(0, 100);
  disk.access_ms(1000, 200);
  EXPECT_EQ(disk.requests_served(), 2u);
  EXPECT_EQ(disk.bytes_served(), 300u);
  EXPECT_GT(disk.busy_ms(), 0.0);
  disk.reset_counters();
  EXPECT_EQ(disk.requests_served(), 0u);
  EXPECT_DOUBLE_EQ(disk.busy_ms(), 0.0);
}

}  // namespace
}  // namespace clio::io
