// Conformance suite for the AsyncBackingStore submission/completion API,
// parameterized over both backends — ThreadPoolAsyncStore (the portable
// fallback) and UringStore (raw io_uring; skipped when the kernel refuses
// io_uring_setup).  Both must satisfy the identical contract:
//
//  - completions delivered exactly once, split freely between poll() and a
//    final wait(), in any order; drained/unknown tickets are forgotten,
//  - per-op failures surface as completions carrying the sync error
//    taxonomy, never as submit() throws,
//  - read/readv EOF semantics match the sync BackingStore contract,
//  - the async counters make the batching observable: one coalesced
//    16-page gather costs at most 2 submit syscalls on uring versus one
//    syscall per op on the thread pool.
//
// Decorator behavior (AsyncFaultStore injection, RetryingAsyncStore
// re-submission/breaker/deadline rules) is exercised here too, on top of
// whichever backend the parameter picks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "io/async_store.hpp"
#include "io/fault_store.hpp"
#include "io/file_store.hpp"
#include "io/io_stats.hpp"
#include "io/retrying_store.hpp"
#include "io/uring_store.hpp"
#include "util/error.hpp"
#include "util/resilience.hpp"
#include "util/temp_dir.hpp"

namespace clio::io {
namespace {

enum class Backend { kThreadPool, kUring };

std::string backend_name(const ::testing::TestParamInfo<Backend>& info) {
  return info.param == Backend::kUring ? "Uring" : "ThreadPool";
}

constexpr std::size_t kPage = 512;

std::vector<std::byte> pattern_page(std::uint8_t v) {
  return std::vector<std::byte>(kPage, std::byte{v});
}

class AsyncStoreTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == Backend::kUring && !UringStore::supported()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel/build";
    }
    dir_ = std::make_unique<util::TempDir>("clio-async");
    store_ = std::make_unique<RealFileStore>(dir_->path());
    if (GetParam() == Backend::kUring) {
      async_ = std::make_unique<UringStore>(*store_);
    } else {
      // >1 worker so completions genuinely reorder.
      async_ = std::make_unique<ThreadPoolAsyncStore>(*store_, 3);
    }
    file_ = store_->open("async.bin", true);
  }

  /// Seeds `pages` pages of file_ through the sync path: page p holds the
  /// uniform byte p+1.
  void seed_pages(std::size_t pages) {
    for (std::size_t p = 0; p < pages; ++p) {
      store_->write(file_, p * kPage,
                    pattern_page(static_cast<std::uint8_t>(p + 1)));
    }
  }

  std::unique_ptr<util::TempDir> dir_;
  std::unique_ptr<RealFileStore> store_;
  std::unique_ptr<AsyncBackingStore> async_;
  FileId file_ = kInvalidFile;
};

TEST_P(AsyncStoreTest, SingleReadRoundTrip) {
  seed_pages(1);
  std::vector<std::byte> buf(kPage);
  std::vector<AsyncOp> batch;
  batch.push_back(AsyncOp::make_read(file_, 0, buf, /*user_data=*/42));
  const auto done = async_->submit_and_wait(std::move(batch));
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].user_data, 42u);
  EXPECT_EQ(done[0].kind, AsyncOpKind::kRead);
  ASSERT_TRUE(done[0].ok());
  EXPECT_EQ(done[0].bytes, kPage);
  EXPECT_EQ(buf, pattern_page(1));
}

TEST_P(AsyncStoreTest, WriteIsVisibleToSyncPathAndSizeStaysCoherent) {
  const auto payload = pattern_page(0xAB);
  std::vector<AsyncOp> batch;
  batch.push_back(AsyncOp::make_write(file_, 3 * kPage, payload, 7));
  const auto done = async_->submit_and_wait(std::move(batch));
  ASSERT_EQ(done.size(), 1u);
  ASSERT_TRUE(done[0].ok());
  EXPECT_EQ(done[0].bytes, kPage);
  // The store's cached size must see the async write (uring reports back
  // through note_external_write).
  EXPECT_EQ(store_->size(file_), 4 * kPage);
  std::vector<std::byte> buf(kPage);
  ASSERT_EQ(store_->read(file_, 3 * kPage, buf), kPage);
  EXPECT_EQ(buf, payload);
}

TEST_P(AsyncStoreTest, BatchCompletionsDeliverExactlyOnceAcrossPollAndWait) {
  constexpr std::size_t kOps = 16;
  seed_pages(kOps);
  std::vector<std::vector<std::byte>> bufs(kOps,
                                           std::vector<std::byte>(kPage));
  std::vector<AsyncOp> batch;
  for (std::size_t i = 0; i < kOps; ++i) {
    batch.push_back(AsyncOp::make_read(file_, i * kPage, bufs[i], 100 + i));
  }
  const AsyncTicket ticket = async_->submit(std::move(batch));

  // Harvest through a poll loop first, then collect the rest via wait():
  // the split between the two is timing-dependent, the union must not be.
  std::vector<AsyncCompletion> done;
  for (int spins = 0; spins < 1000 && done.size() < kOps / 2; ++spins) {
    async_->poll(ticket, done);
  }
  for (auto& c : async_->wait(ticket)) done.push_back(std::move(c));

  ASSERT_EQ(done.size(), kOps);
  std::set<std::uint64_t> seen;
  for (const auto& c : done) {
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.bytes, kPage);
    EXPECT_TRUE(seen.insert(c.user_data).second)
        << "user_data " << c.user_data << " delivered twice";
  }
  EXPECT_EQ(*seen.begin(), 100u);
  EXPECT_EQ(*seen.rbegin(), 100u + kOps - 1);
  for (std::size_t i = 0; i < kOps; ++i) {
    EXPECT_EQ(bufs[i], pattern_page(static_cast<std::uint8_t>(i + 1)))
        << "page " << i;
  }
  // Fully-delivered tickets are forgotten.
  EXPECT_TRUE(async_->wait(ticket).empty());
  std::vector<AsyncCompletion> none;
  EXPECT_EQ(async_->poll(ticket, none), 0u);
}

TEST_P(AsyncStoreTest, UnknownTicketIsEmptyNotAnError) {
  EXPECT_TRUE(async_->wait(987654).empty());
  std::vector<AsyncCompletion> out;
  EXPECT_EQ(async_->poll(987654, out), 0u);
}

TEST_P(AsyncStoreTest, EmptyBatchIsAConfigError) {
  EXPECT_THROW(static_cast<void>(async_->submit({})), util::ConfigError);
}

TEST_P(AsyncStoreTest, VectoredGatherScattersAcrossPartsWithEofSemantics) {
  seed_pages(3);  // file is exactly 3 pages long
  std::vector<std::vector<std::byte>> parts(4,
                                            std::vector<std::byte>(kPage));
  std::vector<std::span<std::byte>> spans;
  for (auto& p : parts) spans.emplace_back(p);
  std::vector<AsyncOp> batch;
  batch.push_back(AsyncOp::make_readv(file_, 0, spans, 5));
  const auto done = async_->submit_and_wait(std::move(batch));
  ASSERT_EQ(done.size(), 1u);
  ASSERT_TRUE(done[0].ok());
  // Short at EOF: only the 3 existing pages arrive.
  EXPECT_EQ(done[0].bytes, 3 * kPage);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(parts[p], pattern_page(static_cast<std::uint8_t>(p + 1)));
  }

  // Entirely past EOF: 0 bytes, still a clean completion.
  std::vector<AsyncOp> past;
  past.push_back(AsyncOp::make_read(file_, 64 * kPage, spans[0], 6));
  const auto eof = async_->submit_and_wait(std::move(past));
  ASSERT_EQ(eof.size(), 1u);
  ASSERT_TRUE(eof[0].ok());
  EXPECT_EQ(eof[0].bytes, 0u);
}

TEST_P(AsyncStoreTest, VectoredWriteLandsContiguously) {
  std::vector<std::vector<std::byte>> parts{pattern_page(0x11),
                                            pattern_page(0x22),
                                            pattern_page(0x33)};
  std::vector<std::span<const std::byte>> spans;
  for (const auto& p : parts) spans.emplace_back(p);
  std::vector<AsyncOp> batch;
  batch.push_back(AsyncOp::make_writev(file_, kPage, spans, 9));
  const auto done = async_->submit_and_wait(std::move(batch));
  ASSERT_EQ(done.size(), 1u);
  ASSERT_TRUE(done[0].ok());
  EXPECT_EQ(done[0].bytes, 3 * kPage);
  std::vector<std::byte> buf(kPage);
  for (std::size_t p = 0; p < 3; ++p) {
    ASSERT_EQ(store_->read(file_, (p + 1) * kPage, buf), kPage);
    EXPECT_EQ(buf, parts[p]) << "part " << p;
  }
}

TEST_P(AsyncStoreTest, InvalidFileSurfacesAsCompletionErrorNotThrow) {
  std::vector<std::byte> buf(kPage);
  std::vector<AsyncOp> batch;
  batch.push_back(AsyncOp::make_read(kInvalidFile, 0, buf, 1));
  batch.push_back(AsyncOp::make_read(file_, 0, buf, 2));
  const auto done = async_->submit_and_wait(std::move(batch));
  ASSERT_EQ(done.size(), 2u);
  std::size_t errors = 0;
  for (const auto& c : done) {
    if (c.user_data == 1) {
      EXPECT_FALSE(c.ok());
      EXPECT_THROW(c.rethrow(), util::IoError);
      ++errors;
    } else {
      EXPECT_TRUE(c.ok());
    }
  }
  EXPECT_EQ(errors, 1u);
}

TEST_P(AsyncStoreTest, CoalescedGatherBatchingIsObservableInAsyncCounters) {
  // The acceptance assertion of the redesign: a 16-page coalesced gather
  // submitted as one readv op costs at most 2 submit syscalls on uring
  // (one io_uring_enter, +1 allowed for a partial-transfer re-submission),
  // versus one syscall per executed op on the thread-pool fallback.
  constexpr std::size_t kPages = 16;
  seed_pages(kPages);
  IoStats stats;
  async_->bind_stats(&stats);
  std::vector<std::vector<std::byte>> parts(kPages,
                                            std::vector<std::byte>(kPage));
  std::vector<std::span<std::byte>> spans;
  for (auto& p : parts) spans.emplace_back(p);
  std::vector<AsyncOp> batch;
  batch.push_back(AsyncOp::make_readv(file_, 0, spans, 0));
  const auto done = async_->submit_and_wait(std::move(batch));
  ASSERT_EQ(done.size(), 1u);
  ASSERT_TRUE(done[0].ok());
  EXPECT_EQ(done[0].bytes, kPages * kPage);

  const AsyncCounters ac = stats.async_counters();
  EXPECT_EQ(ac.submissions, 1u);
  EXPECT_EQ(ac.submitted_ops, 1u);
  EXPECT_EQ(ac.completions, 1u);
  EXPECT_EQ(ac.completion_errors, 0u);
  EXPECT_EQ(ac.bytes_completed, kPages * kPage);
  if (GetParam() == Backend::kUring) {
    EXPECT_LE(ac.submit_syscalls, 2u)
        << "a coalesced gather must not cost per-page submit syscalls";
    EXPECT_LE(ac.syscalls_per_page(kPage), 2.0 / kPages + 1e-9);
  } else {
    // The fallback pays one kernel round-trip per executed op — exactly
    // the deficit the syscalls-per-page stat exists to show.
    EXPECT_EQ(ac.submit_syscalls, 1u);
  }
  async_->bind_stats(nullptr);
}

// ---------------------------------------------------------- decorators ----

TEST_P(AsyncStoreTest, FaultDecoratorInjectsErrorsIntoCompletions) {
  seed_pages(4);
  FaultStore faults(*store_);  // default plan: no probabilistic faults
  AsyncFaultStore faulty(*async_, faults);
  faults.fail_next(FaultOp::kRead, 1);

  std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(kPage));
  std::vector<AsyncOp> batch;
  for (std::size_t i = 0; i < 4; ++i) {
    batch.push_back(AsyncOp::make_read(file_, i * kPage, bufs[i], i));
  }
  const auto done = faulty.submit_and_wait(std::move(batch));
  ASSERT_EQ(done.size(), 4u);
  std::size_t injected = 0;
  for (const auto& c : done) {
    if (!c.ok()) {
      EXPECT_THROW(c.rethrow(), util::TransientIoError);
      ++injected;
    }
  }
  EXPECT_EQ(injected, 1u);
  EXPECT_EQ(faults.stats().total_faults(), 1u);
}

TEST_P(AsyncStoreTest, RetryingDecoratorAbsorbsTransientCompletionFailures) {
  seed_pages(2);
  FaultStore faults(*store_);
  AsyncFaultStore faulty(*async_, faults);
  IoStats stats;
  RetryPolicy policy;
  policy.backoff.base_delay_us = 10;  // keep the test fast
  policy.backoff.max_delay_us = 100;
  RetryingAsyncStore retrying(faulty, policy);
  retrying.bind_stats(&stats);

  // The next two reads fail with clean (transient) EIOs; the re-submitted
  // attempts go through.
  faults.fail_next(FaultOp::kRead, 2);
  std::vector<std::vector<std::byte>> bufs(2, std::vector<std::byte>(kPage));
  std::vector<AsyncOp> batch;
  batch.push_back(AsyncOp::make_read(file_, 0, bufs[0], 0));
  batch.push_back(AsyncOp::make_read(file_, kPage, bufs[1], 1));
  const auto done = retrying.submit_and_wait(std::move(batch));
  ASSERT_EQ(done.size(), 2u);
  for (const auto& c : done) {
    ASSERT_TRUE(c.ok()) << "transient failures must be absorbed";
    EXPECT_EQ(c.bytes, kPage);
  }
  EXPECT_EQ(bufs[0], pattern_page(1));
  EXPECT_EQ(bufs[1], pattern_page(2));

  const RetryStats rs = retrying.stats();
  EXPECT_EQ(rs.retries, 2u);
  EXPECT_EQ(rs.absorbed, 2u);
  EXPECT_EQ(rs.exhausted, 0u);
  EXPECT_EQ(stats.resilience().retries, 2u);
  EXPECT_EQ(stats.resilience().absorbed_faults, 2u);
  EXPECT_EQ(stats.async_counters().resubmissions, 2u);
}

TEST_P(AsyncStoreTest, RetryingDecoratorSurfacesExhaustedTransients) {
  seed_pages(1);
  FaultStore faults(*store_);
  AsyncFaultStore faulty(*async_, faults);
  RetryPolicy policy;
  policy.backoff.max_retries = 2;
  policy.backoff.base_delay_us = 10;
  policy.backoff.max_delay_us = 50;
  RetryingAsyncStore retrying(faulty, policy);

  faults.fail_next(FaultOp::kRead, 100);  // more than the retry budget
  std::vector<std::byte> buf(kPage);
  std::vector<AsyncOp> batch;
  batch.push_back(AsyncOp::make_read(file_, 0, buf, 3));
  const auto done = retrying.submit_and_wait(std::move(batch));
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].user_data, 3u);
  EXPECT_FALSE(done[0].ok());
  EXPECT_THROW(done[0].rethrow(), util::TransientIoError);
  const RetryStats rs = retrying.stats();
  EXPECT_EQ(rs.retries, 2u);
  EXPECT_EQ(rs.exhausted, 1u);
}

TEST_P(AsyncStoreTest, RetryingDecoratorFastFailsWhenBreakerIsOpen) {
  seed_pages(1);
  util::CircuitBreakerConfig bc;
  bc.failure_threshold = 1;
  bc.open_cooldown_ms = 60'000;  // stays open for the whole test
  util::CircuitBreaker breaker(bc);
  static_cast<void>(breaker.try_acquire());
  static_cast<void>(breaker.record_failure());  // trip it open

  RetryingAsyncStore retrying(*async_, RetryPolicy{}, &breaker);
  std::vector<std::byte> buf(kPage);
  std::vector<AsyncOp> batch;
  batch.push_back(AsyncOp::make_read(file_, 0, buf, 8));
  const auto done = retrying.submit_and_wait(std::move(batch));
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].user_data, 8u);
  EXPECT_FALSE(done[0].ok());
  EXPECT_THROW(done[0].rethrow(), util::TransientIoError);
  EXPECT_GE(retrying.stats().fast_fails, 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, AsyncStoreTest,
                         ::testing::Values(Backend::kThreadPool,
                                           Backend::kUring),
                         backend_name);

// ------------------------------------------------------------ uring-only ----

TEST(UringStoreTest, StubThrowsConfigErrorWhenUnsupported) {
  if (UringStore::supported()) {
    GTEST_SKIP() << "io_uring available; the stub path is not reachable";
  }
  util::TempDir dir("clio-uring");
  RealFileStore store(dir.path());
  EXPECT_THROW(UringStore probe(store), util::ConfigError);
}

TEST(UringStoreTest, RegisteredBuffersStillRoundTrip) {
  if (!UringStore::supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel/build";
  }
  util::TempDir dir("clio-uring");
  RealFileStore store(dir.path());
  UringStore uring(store);
  const FileId file = store.open("fixed.bin", true);

  // One contiguous region backing 8 pages; ops inside it may take the
  // READ_FIXED/WRITE_FIXED path once registration succeeds.
  std::vector<std::byte> region(8 * kPage);
  const std::span<std::byte> spans[] = {std::span<std::byte>(region)};
  const bool registered = uring.register_buffers(spans);
  // Registration may be refused (locked-memory limits); correctness must
  // not depend on it either way.

  for (std::size_t p = 0; p < 8; ++p) {
    std::memset(region.data() + p * kPage, static_cast<int>(p + 1), kPage);
  }
  std::vector<AsyncOp> writes;
  for (std::size_t p = 0; p < 8; ++p) {
    writes.push_back(AsyncOp::make_write(
        file, p * kPage,
        std::span<const std::byte>(region).subspan(p * kPage, kPage), p));
  }
  for (const auto& c : uring.submit_and_wait(std::move(writes))) {
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.bytes, kPage);
  }

  std::fill(region.begin(), region.end(), std::byte{0});
  std::vector<AsyncOp> reads;
  for (std::size_t p = 0; p < 8; ++p) {
    reads.push_back(AsyncOp::make_read(
        file, p * kPage,
        std::span<std::byte>(region).subspan(p * kPage, kPage), p));
  }
  for (const auto& c : uring.submit_and_wait(std::move(reads))) {
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.bytes, kPage);
  }
  for (std::size_t p = 0; p < 8; ++p) {
    EXPECT_EQ(region[p * kPage], std::byte{static_cast<unsigned char>(p + 1)})
        << "page " << p << (registered ? " (fixed path)" : " (plain path)");
  }
}

}  // namespace
}  // namespace clio::io
