#include "io/managed_file.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "io/fault_store.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/temp_dir.hpp"

namespace clio::io {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

std::string read_all(ManagedFile& f, std::size_t n) {
  std::vector<std::byte> buf(n);
  const std::size_t got = f.read(buf);
  return std::string(reinterpret_cast<const char*>(buf.data()), got);
}

class ManagedFileTest : public ::testing::Test {
 protected:
  ManagedFileTest() { reset(ManagedFsOptions{}); }

  void reset(ManagedFsOptions options) {
    options.page_size = 256;
    options.pool_pages = 16;
    fs_ = std::make_unique<ManagedFileSystem>(
        std::make_unique<RealFileStore>(dir_.path()), options);
  }

  util::TempDir dir_;
  std::unique_ptr<ManagedFileSystem> fs_;
};

TEST_F(ManagedFileTest, CreateWriteReadBack) {
  auto f = fs_->open("a.bin", OpenMode::kCreate);
  f.write(as_bytes("managed hello"));
  f.seek(0);
  EXPECT_EQ(read_all(f, 13), "managed hello");
  f.close();
}

TEST_F(ManagedFileTest, OpenMissingForReadThrows) {
  EXPECT_THROW(fs_->open("nope", OpenMode::kRead), util::IoError);
  EXPECT_THROW(fs_->open("nope", OpenMode::kReadWrite), util::IoError);
}

TEST_F(ManagedFileTest, TruncateWipesContent) {
  {
    auto f = fs_->open("t.bin", OpenMode::kCreate);
    f.write(as_bytes("old content"));
  }
  auto f = fs_->open("t.bin", OpenMode::kTruncate);
  EXPECT_EQ(f.size(), 0u);
}

TEST_F(ManagedFileTest, CreateKeepsExistingContent) {
  {
    auto f = fs_->open("k.bin", OpenMode::kCreate);
    f.write(as_bytes("keep"));
  }
  auto f = fs_->open("k.bin", OpenMode::kCreate);
  EXPECT_EQ(f.size(), 4u);
}

TEST_F(ManagedFileTest, PositionAdvancesOnReadAndWrite) {
  auto f = fs_->open("p.bin", OpenMode::kCreate);
  f.write(as_bytes("0123456789"));
  EXPECT_EQ(f.position(), 10u);
  f.seek(2);
  EXPECT_EQ(f.position(), 2u);
  EXPECT_EQ(read_all(f, 3), "234");
  EXPECT_EQ(f.position(), 5u);
}

TEST_F(ManagedFileTest, ReadAtEofReturnsZero) {
  auto f = fs_->open("e.bin", OpenMode::kCreate);
  f.write(as_bytes("xy"));
  std::vector<std::byte> buf(4);
  EXPECT_EQ(f.read(buf), 0u);  // position is at EOF after write
}

TEST_F(ManagedFileTest, ShortReadNearEof) {
  auto f = fs_->open("s.bin", OpenMode::kCreate);
  f.write(as_bytes("abcdef"));
  f.seek(4);
  EXPECT_EQ(read_all(f, 100), "ef");
}

TEST_F(ManagedFileTest, ReadExactThrowsOnShortRead) {
  auto f = fs_->open("x.bin", OpenMode::kCreate);
  f.write(as_bytes("abc"));
  f.seek(0);
  std::vector<std::byte> buf(10);
  EXPECT_THROW(f.read_exact(buf), util::IoError);
}

TEST_F(ManagedFileTest, MultiPageWriteRoundTrips) {
  // 5 pages of 256 B, written in one call, read back in one call.
  std::string content;
  for (int p = 0; p < 5; ++p) content += std::string(256, char('A' + p));
  auto f = fs_->open("big.bin", OpenMode::kCreate);
  f.write(as_bytes(content));
  f.seek(0);
  EXPECT_EQ(read_all(f, content.size()), content);
}

TEST_F(ManagedFileTest, UnalignedWritesPreserveNeighbors) {
  auto f = fs_->open("u.bin", OpenMode::kCreate);
  f.write(as_bytes(std::string(512, '.')));
  f.seek(250);  // straddles the page boundary at 256
  f.write(as_bytes("BOUNDARY"));
  f.seek(0);
  const std::string all = read_all(f, 512);
  EXPECT_EQ(all.substr(250, 8), "BOUNDARY");
  EXPECT_EQ(all[249], '.');
  EXPECT_EQ(all[258], '.');
}

TEST_F(ManagedFileTest, DataPersistsAfterCloseViaWriteback) {
  {
    auto f = fs_->open("persist.bin", OpenMode::kCreate);
    f.write(as_bytes("durable"));
    f.close();
  }
  // Fresh managed fs over the same directory: data must be on real disk.
  reset(ManagedFsOptions{});
  auto f = fs_->open("persist.bin", OpenMode::kRead);
  EXPECT_EQ(read_all(f, 7), "durable");
}

TEST_F(ManagedFileTest, CloseIsIdempotentAndOpsOnClosedThrow) {
  auto f = fs_->open("c.bin", OpenMode::kCreate);
  f.close();
  f.close();  // no-op
  std::vector<std::byte> buf(1);
  EXPECT_THROW(f.read(buf), util::IoError);
  EXPECT_THROW(f.write(as_bytes("x")), util::IoError);
  EXPECT_THROW(f.seek(0), util::IoError);
}

TEST_F(ManagedFileTest, DestructorClosesImplicitly) {
  {
    auto f = fs_->open("d.bin", OpenMode::kCreate);
    f.write(as_bytes("bye"));
  }  // destructor close
  auto f = fs_->open("d.bin", OpenMode::kRead);
  EXPECT_EQ(f.size(), 3u);
}

TEST_F(ManagedFileTest, MoveTransfersHandle) {
  auto a = fs_->open("m.bin", OpenMode::kCreate);
  a.write(as_bytes("moved"));
  ManagedFile b = std::move(a);
  EXPECT_FALSE(a.is_open());
  EXPECT_TRUE(b.is_open());
  b.seek(0);
  EXPECT_EQ(read_all(b, 5), "moved");
}

TEST_F(ManagedFileTest, StatsRecordEveryOpClass) {
  auto f = fs_->open("ops.bin", OpenMode::kCreate);
  f.write(as_bytes("payload"));
  f.seek(0);
  std::vector<std::byte> buf(7);
  f.read(buf);
  f.close();
  const IoStats& stats = fs_->stats();
  EXPECT_EQ(stats.op_stats(IoOp::kOpen).count(), 1u);
  EXPECT_EQ(stats.op_stats(IoOp::kWrite).count(), 1u);
  EXPECT_EQ(stats.op_stats(IoOp::kSeek).count(), 1u);
  EXPECT_EQ(stats.op_stats(IoOp::kRead).count(), 1u);
  EXPECT_EQ(stats.op_stats(IoOp::kClose).count(), 1u);
  EXPECT_EQ(stats.total_bytes(), 14u);  // 7 written + 7 read
}

TEST_F(ManagedFileTest, SequentialReadTriggersPrefetch) {
  // Write 8 pages, drop caches, then read sequentially: the prefetcher
  // must load pages ahead of the stream.
  {
    auto f = fs_->open("seq.bin", OpenMode::kCreate);
    f.write(as_bytes(std::string(8 * 256, 's')));
  }
  fs_->drop_caches();
  auto f = fs_->open("seq.bin", OpenMode::kRead);
  std::vector<std::byte> page(256);
  f.read(page);
  f.read(page);
  f.read(page);  // by now the streak is established
  EXPECT_GT(fs_->pool().stats().prefetches, 0u);
  // Pages ahead of the read position are already resident.
  const std::uint64_t next = f.position() / 256;
  EXPECT_TRUE(fs_->pool().contains(fs_->store().open("seq.bin", false), next));
}

TEST_F(ManagedFileTest, ColdSeekLoadsTargetPageWarmSeekFree) {
  {
    auto f = fs_->open("seek.bin", OpenMode::kCreate);
    f.write(as_bytes(std::string(16 * 256, 'k')));
  }
  fs_->drop_caches();
  auto f = fs_->open("seek.bin", OpenMode::kRead);
  const auto before = fs_->pool().stats();
  f.seek(10 * 256);  // cold: target page fetched
  const auto mid = fs_->pool().stats();
  EXPECT_GT(mid.prefetches, before.prefetches);
  f.seek(10 * 256);  // warm: nothing to fetch
  const auto after = fs_->pool().stats();
  EXPECT_EQ(after.prefetches, mid.prefetches);
}

TEST_F(ManagedFileTest, PrefetchOnSeekCanBeDisabled) {
  ManagedFsOptions options;
  options.prefetch_on_seek = false;
  reset(options);
  {
    auto f = fs_->open("ns.bin", OpenMode::kCreate);
    f.write(as_bytes(std::string(4 * 256, 'n')));
  }
  fs_->drop_caches();
  auto f = fs_->open("ns.bin", OpenMode::kRead);
  f.seek(2 * 256);
  EXPECT_EQ(fs_->pool().stats().prefetches, 0u);
}

TEST_F(ManagedFileTest, AsyncPrefetchSequentialReadSeesCorrectData) {
  ManagedFsOptions options;
  options.async_prefetch = true;
  options.prefetch_threads = 2;
  reset(options);
  std::string content;
  for (int p = 0; p < 16; ++p) content += std::string(256, char('A' + p));
  {
    auto f = fs_->open("async.bin", OpenMode::kCreate);
    f.write(as_bytes(content));
  }
  fs_->drop_caches();
  // drop_caches keeps the pool object (and its counters) alive now, so
  // count loads as a delta from this baseline.
  const PoolStats base = fs_->pool().stats();
  // Sequential page-sized reads: readahead runs on the background workers
  // while this loop consumes; every byte must still be exact.
  auto f = fs_->open("async.bin", OpenMode::kRead);
  std::string got;
  std::vector<std::byte> page(256);
  for (int p = 0; p < 16; ++p) {
    f.read_exact(page);
    got.append(reinterpret_cast<const char*>(page.data()), page.size());
  }
  EXPECT_EQ(got, content);
  fs_->pool().drain_prefetches();
  // Each of the 16 pages was loaded exactly once, by demand miss or by the
  // prefetch workers (pool holds the whole file; nothing was evicted).
  const PoolStats stats = fs_->pool().stats();
  EXPECT_EQ((stats.misses + stats.prefetches) -
                (base.misses + base.prefetches),
            16u);
}

TEST_F(ManagedFileTest, AsyncPrefetchCloseDrainsOutstandingReadahead) {
  ManagedFsOptions options;
  options.async_prefetch = true;
  options.writeback_on_close = false;  // close must drain even without flush
  reset(options);
  {
    auto f = fs_->open("drain.bin", OpenMode::kCreate);
    f.write(as_bytes(std::string(8 * 256, 'd')));
    fs_->pool().flush_all();  // writeback_on_close is off: persist manually
  }
  fs_->drop_caches();
  auto f = fs_->open("drain.bin", OpenMode::kRead);
  std::vector<std::byte> page(256);
  for (int p = 0; p < 4; ++p) f.read_exact(page);
  // Destructor-close while readahead may still be queued: the drain inside
  // close() must let it land before the backing fd is released.
  f.close();
  SUCCEED();
}

TEST_F(ManagedFileTest, ReadOnlyCloseDrainsReadaheadDespiteFlushFastPath) {
  // writeback_on_close=true routes close() through flush_file, whose
  // never-dirtied fast path must still drain queued readahead before the
  // backing fd is released — otherwise an async worker can gather from a
  // dead (or worse, reused) descriptor.  Regression for the flush
  // fast-path ordering.
  ManagedFsOptions options;
  options.async_prefetch = true;
  options.prefetch_threads = 2;
  reset(options);
  {
    auto f = fs_->open("ro.bin", OpenMode::kCreate);
    f.write(as_bytes(std::string(12 * 256, 'r')));
  }
  fs_->drop_caches();
  for (int round = 0; round < 8; ++round) {
    auto f = fs_->open("ro.bin", OpenMode::kRead);
    std::vector<std::byte> page(256);
    for (int p = 0; p < 3; ++p) f.read_exact(page);  // streak -> async hints
    f.close();  // read-only: dirty-extent fast path, must drain first
    EXPECT_EQ(static_cast<char>(page[0]), 'r');
  }
}

TEST_F(ManagedFileTest, RemoveDeletesClosedFile) {
  {
    auto f = fs_->open("rm.bin", OpenMode::kCreate);
    f.write(as_bytes("gone"));
  }
  EXPECT_TRUE(fs_->exists("rm.bin"));
  fs_->remove("rm.bin");
  EXPECT_FALSE(fs_->exists("rm.bin"));
}

TEST_F(ManagedFileTest, VectoredBackingOpsAreObservableFromIoStats) {
  // The coalescing ratio used to be visible only in bench output; now the
  // backing gathers are recorded as IoOp::kWritev / kReadv in IoStats.
  {
    auto f = fs_->open("vec.bin", OpenMode::kCreate);
    f.write(as_bytes(std::string(16 * 256, 'v')));
  }  // close flushes: 16 adjacent dirty pages coalesce into one writev
  const IoStats& stats = fs_->stats();
  EXPECT_EQ(stats.op_stats(IoOp::kWritev).count(), 1u);
  EXPECT_EQ(stats.op_bytes(IoOp::kWritev), 16 * 256u);
  // The same numbers are visible pool-side; the two layers must agree.
  const PoolStats pool_stats = fs_->pool().stats();
  EXPECT_EQ(pool_stats.flush_write_calls, 1u);
  EXPECT_EQ(pool_stats.flush_write_pages, 16u);

  fs_->drop_caches();  // evicts every page; counters keep accumulating
  auto f = fs_->open("vec.bin", OpenMode::kRead);
  std::vector<std::byte> page(256);
  for (int p = 0; p < 16; ++p) f.read_exact(page);
  fs_->pool().drain_prefetches();
  // Sequential reads established a streak and the readahead went out as
  // readv gathers; stats bytes must equal the pool's gathered pages.
  const std::uint64_t readv_calls = stats.op_stats(IoOp::kReadv).count();
  EXPECT_GE(readv_calls, 1u);
  EXPECT_EQ(stats.op_bytes(IoOp::kReadv),
            fs_->pool().stats().gather_read_pages * 256u);
  // Batching: strictly fewer backing calls than pages moved through them.
  EXPECT_LT(readv_calls, fs_->pool().stats().gather_read_pages);
}

TEST_F(ManagedFileTest, AsyncCloseDrainsDespiteInjectedWorkerFailures) {
  // A failing backing store must not wedge the drain that close() performs:
  // background readahead errors are swallowed, the demand path reports.
  auto owned = std::make_unique<FaultStore>(
      std::make_unique<RealFileStore>(dir_.path()));
  FaultStore* faults = owned.get();
  ManagedFsOptions options;
  options.page_size = 256;
  options.pool_pages = 16;
  options.async_prefetch = true;
  options.prefetch_threads = 2;
  ManagedFileSystem fs(std::move(owned), options);
  {
    auto f = fs.open("drain.bin", OpenMode::kCreate);
    f.write(as_bytes(std::string(12 * 256, 'x')));
  }
  fs.drop_caches();
  auto f = fs.open("drain.bin", OpenMode::kRead);
  std::vector<std::byte> page(256);
  for (int p = 0; p < 3; ++p) f.read_exact(page);  // streak -> async hints
  // Every backing gather the workers issue from here on fails.
  faults->fail_next(FaultOp::kReadv, 1000);
  for (int p = 3; p < 6; ++p) f.read_exact(page);  // more hints enqueued
  f.close();  // must drain the failing readahead queue and return
  faults->fail_next(FaultOp::kReadv, 0);
  // The file reads back intact afterwards.
  auto g = fs.open("drain.bin", OpenMode::kRead);
  for (int p = 0; p < 12; ++p) {
    g.read_exact(page);
    EXPECT_EQ(static_cast<char>(page[0]), 'x') << p;
  }
}

TEST_F(ManagedFileTest, WorksOverSimStoreToo) {
  ManagedFsOptions options;
  options.page_size = 256;
  options.pool_pages = 16;
  ManagedFileSystem sim_fs(std::make_unique<SimFileStore>(4, 64 * 1024),
                           options);
  auto f = sim_fs.open("sim.bin", OpenMode::kCreate);
  f.write(as_bytes("simulated"));
  f.seek(0);
  EXPECT_EQ(read_all(f, 9), "simulated");
  f.close();
  auto& store = dynamic_cast<SimFileStore&>(sim_fs.store());
  EXPECT_GT(store.consume_model_ms(), 0.0);
}

}  // namespace
}  // namespace clio::io
