#include "io/prefetcher.hpp"

#include <gtest/gtest.h>

namespace clio::io {
namespace {

TEST(Prefetcher, NoProposalOnFirstAccess) {
  SequentialPrefetcher pf;
  std::vector<std::uint64_t> out;
  pf.on_access(1, 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(Prefetcher, ProposesWindowAfterStreak) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 3, .min_streak = 2});
  std::vector<std::uint64_t> out;
  pf.on_access(1, 0, out);
  EXPECT_TRUE(out.empty());
  pf.on_access(1, 1, out);  // streak = 2 -> propose 2,3,4
  EXPECT_EQ(out, (std::vector<std::uint64_t>{2, 3, 4}));
}

TEST(Prefetcher, RandomAccessBreaksStreak) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 2, .min_streak = 2});
  std::vector<std::uint64_t> out;
  pf.on_access(1, 0, out);
  pf.on_access(1, 1, out);
  out.clear();
  pf.on_access(1, 50, out);  // jump
  EXPECT_TRUE(out.empty());
  pf.on_access(1, 51, out);  // streak rebuilt
  EXPECT_EQ(out, (std::vector<std::uint64_t>{52, 53}));
}

TEST(Prefetcher, RepeatedSamePageKeepsStreakAlive) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 1, .min_streak = 2});
  std::vector<std::uint64_t> out;
  pf.on_access(1, 0, out);
  pf.on_access(1, 1, out);
  out.clear();
  pf.on_access(1, 1, out);  // re-touch: still sequential enough
  // streak stays >= min_streak so the window is proposed again
  EXPECT_EQ(out, (std::vector<std::uint64_t>{2}));
}

TEST(Prefetcher, FilesTrackedIndependently) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 1, .min_streak = 2});
  std::vector<std::uint64_t> out;
  pf.on_access(1, 0, out);
  pf.on_access(2, 10, out);
  pf.on_access(1, 1, out);  // file 1 streak = 2
  EXPECT_EQ(out, (std::vector<std::uint64_t>{2}));
  out.clear();
  pf.on_access(2, 11, out);  // file 2 streak = 2
  EXPECT_EQ(out, (std::vector<std::uint64_t>{12}));
}

TEST(Prefetcher, ZeroWindowDisables) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 0, .min_streak = 1});
  std::vector<std::uint64_t> out;
  for (std::uint64_t p = 0; p < 10; ++p) pf.on_access(1, p, out);
  EXPECT_TRUE(out.empty());
}

TEST(Prefetcher, ForgetResetsFileState) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 1, .min_streak = 2});
  std::vector<std::uint64_t> out;
  pf.on_access(1, 0, out);
  pf.forget(1);
  pf.on_access(1, 1, out);  // streak restarts at 1
  EXPECT_TRUE(out.empty());
}

TEST(Prefetcher, ResetClearsAllFiles) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 1, .min_streak = 2});
  std::vector<std::uint64_t> out;
  pf.on_access(1, 0, out);
  pf.on_access(2, 0, out);
  pf.reset();
  pf.on_access(1, 1, out);
  pf.on_access(2, 1, out);
  EXPECT_TRUE(out.empty());
}

TEST(Prefetcher, AppendsWithoutClearing) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 1, .min_streak = 1});
  std::vector<std::uint64_t> out{99};
  pf.on_access(1, 0, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 99u);
  EXPECT_EQ(out[1], 1u);
}

// Property sweep: the proposal is always the contiguous run after the
// accessed page, of exactly `window` length, once the streak is met.
class PrefetchWindowProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefetchWindowProperty, WindowShapeHolds) {
  const std::size_t window = GetParam();
  SequentialPrefetcher pf(PrefetchConfig{.window = window, .min_streak = 3});
  std::vector<std::uint64_t> out;
  for (std::uint64_t p = 100; p < 103; ++p) {
    out.clear();
    pf.on_access(7, p, out);
  }
  ASSERT_EQ(out.size(), window);
  for (std::size_t i = 0; i < window; ++i) EXPECT_EQ(out[i], 103 + i);
}

INSTANTIATE_TEST_SUITE_P(Windows, PrefetchWindowProperty,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace clio::io
