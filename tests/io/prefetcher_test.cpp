#include "io/prefetcher.hpp"

#include <gtest/gtest.h>

namespace clio::io {
namespace {

TEST(Prefetcher, NoProposalOnFirstAccess) {
  SequentialPrefetcher pf;
  EXPECT_TRUE(pf.propose(1, 0).empty());
}

TEST(Prefetcher, ProposesWindowAfterStreak) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 3, .min_streak = 2});
  EXPECT_TRUE(pf.propose(1, 0).empty());
  const PrefetchRange r = pf.propose(1, 1);  // streak = 2 -> propose 2,3,4
  EXPECT_EQ(r.first, 2u);
  EXPECT_EQ(r.count, 3u);
}

TEST(Prefetcher, RandomAccessBreaksStreak) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 2, .min_streak = 2});
  pf.propose(1, 0);
  pf.propose(1, 1);
  EXPECT_TRUE(pf.propose(1, 50).empty());  // jump
  const PrefetchRange r = pf.propose(1, 51);  // streak rebuilt
  EXPECT_EQ(r.first, 52u);
  EXPECT_EQ(r.count, 2u);
}

TEST(Prefetcher, RepeatedSamePageKeepsStreakAlive) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 1, .min_streak = 2});
  pf.propose(1, 0);
  pf.propose(1, 1);
  const PrefetchRange r = pf.propose(1, 1);  // re-touch: still sequential
  // streak stays >= min_streak so the window is proposed again
  EXPECT_EQ(r.first, 2u);
  EXPECT_EQ(r.count, 1u);
}

TEST(Prefetcher, FilesTrackedIndependently) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 1, .min_streak = 2});
  pf.propose(1, 0);
  pf.propose(2, 10);
  const PrefetchRange r1 = pf.propose(1, 1);  // file 1 streak = 2
  EXPECT_EQ(r1.first, 2u);
  EXPECT_EQ(r1.count, 1u);
  const PrefetchRange r2 = pf.propose(2, 11);  // file 2 streak = 2
  EXPECT_EQ(r2.first, 12u);
  EXPECT_EQ(r2.count, 1u);
}

TEST(Prefetcher, ZeroWindowDisables) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 0, .min_streak = 1});
  for (std::uint64_t p = 0; p < 10; ++p) {
    EXPECT_TRUE(pf.propose(1, p).empty());
  }
}

TEST(Prefetcher, ForgetResetsFileState) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 1, .min_streak = 2});
  pf.propose(1, 0);
  pf.forget(1);
  EXPECT_TRUE(pf.propose(1, 1).empty());  // streak restarts at 1
}

TEST(Prefetcher, ResetClearsAllFiles) {
  SequentialPrefetcher pf(PrefetchConfig{.window = 1, .min_streak = 2});
  pf.propose(1, 0);
  pf.propose(2, 0);
  pf.reset();
  EXPECT_TRUE(pf.propose(1, 1).empty());
  EXPECT_TRUE(pf.propose(2, 1).empty());
}

// Property sweep: the proposal is always the contiguous run after the
// accessed page, of exactly `window` length, once the streak is met.
class PrefetchWindowProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefetchWindowProperty, WindowShapeHolds) {
  const std::size_t window = GetParam();
  SequentialPrefetcher pf(PrefetchConfig{.window = window, .min_streak = 3});
  PrefetchRange r;
  for (std::uint64_t p = 100; p < 103; ++p) r = pf.propose(7, p);
  EXPECT_EQ(r.first, 103u);
  EXPECT_EQ(r.count, window);
}

INSTANTIATE_TEST_SUITE_P(Windows, PrefetchWindowProperty,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace clio::io
