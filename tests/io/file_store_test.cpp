#include "io/file_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/error.hpp"
#include "util/temp_dir.hpp"

namespace clio::io {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

std::string to_string(std::span<const std::byte> bytes, std::size_t n) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), n);
}

/// Both BackingStore implementations must satisfy the same contract, so the
/// whole suite is typed over a factory.
template <typename MakeStore>
class StoreFixture : public ::testing::Test {
 protected:
  StoreFixture() : store_holder_(MakeStore{}(dir_)), store_(*store_holder_) {}

  util::TempDir dir_;
  std::unique_ptr<BackingStore> store_holder_;
  BackingStore& store_;
};

struct MakeReal {
  std::unique_ptr<BackingStore> operator()(util::TempDir& dir) const {
    return std::make_unique<RealFileStore>(dir.path());
  }
};
struct MakeSim {
  std::unique_ptr<BackingStore> operator()(util::TempDir&) const {
    return std::make_unique<SimFileStore>(4, 64 * 1024);
  }
};

template <typename T>
using BackingStoreContract = StoreFixture<T>;
using StoreTypes = ::testing::Types<MakeReal, MakeSim>;
TYPED_TEST_SUITE(BackingStoreContract, StoreTypes);

TYPED_TEST(BackingStoreContract, CreateWriteReadRoundTrip) {
  auto& store = this->store_;
  const FileId id = store.open("data.bin", /*create=*/true);
  store.write(id, 0, as_bytes("hello world"));
  std::vector<std::byte> buf(11);
  EXPECT_EQ(store.read(id, 0, buf), 11u);
  EXPECT_EQ(to_string(buf, 11), "hello world");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, OpenMissingWithoutCreateFails) {
  auto& store = this->store_;
  EXPECT_THROW(store.open("missing", /*create=*/false), util::IoError);
}

TYPED_TEST(BackingStoreContract, SizeTracksWrites) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  EXPECT_EQ(store.size(id), 0u);
  store.write(id, 100, as_bytes("x"));
  EXPECT_EQ(store.size(id), 101u);  // hole + 1 byte
  store.close(id);
}

TYPED_TEST(BackingStoreContract, HolesReadAsZero) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 10, as_bytes("z"));
  std::vector<std::byte> buf(10);
  EXPECT_EQ(store.read(id, 0, buf), 10u);
  for (auto b : buf) EXPECT_EQ(b, std::byte{0});
  store.close(id);
}

TYPED_TEST(BackingStoreContract, ReadPastEofReturnsZero) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abc"));
  std::vector<std::byte> buf(8);
  EXPECT_EQ(store.read(id, 100, buf), 0u);
  store.close(id);
}

TYPED_TEST(BackingStoreContract, ShortReadAtEof) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abcdef"));
  std::vector<std::byte> buf(10);
  EXPECT_EQ(store.read(id, 4, buf), 2u);
  EXPECT_EQ(to_string(buf, 2), "ef");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, OverwriteInPlace) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("aaaaaa"));
  store.write(id, 2, as_bytes("BB"));
  std::vector<std::byte> buf(6);
  store.read(id, 0, buf);
  EXPECT_EQ(to_string(buf, 6), "aaBBaa");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, TruncateShrinksFile) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("0123456789"));
  store.truncate(id, 4);
  EXPECT_EQ(store.size(id), 4u);
  std::vector<std::byte> buf(10);
  EXPECT_EQ(store.read(id, 0, buf), 4u);
  store.close(id);
}

TYPED_TEST(BackingStoreContract, ExistsReflectsLifecycle) {
  auto& store = this->store_;
  EXPECT_FALSE(store.exists("f"));
  const FileId id = store.open("f", true);
  EXPECT_TRUE(store.exists("f"));
  store.close(id);
  EXPECT_TRUE(store.exists("f"));  // close does not delete
  store.remove("f");
  EXPECT_FALSE(store.exists("f"));
}

TYPED_TEST(BackingStoreContract, ReopenSeesPersistedData) {
  auto& store = this->store_;
  FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("persist"));
  store.close(id);
  id = store.open("f", true);
  std::vector<std::byte> buf(7);
  EXPECT_EQ(store.read(id, 0, buf), 7u);
  EXPECT_EQ(to_string(buf, 7), "persist");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, DoubleOpenSharesId) {
  auto& store = this->store_;
  const FileId a = store.open("f", true);
  const FileId b = store.open("f", true);
  EXPECT_EQ(a, b);
  store.close(a);
  store.close(b);
}

TYPED_TEST(BackingStoreContract, ReadvScattersContiguousBytesInOrder) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("0123456789abcdef"));
  std::vector<std::byte> a(4), b(6);
  std::vector<std::span<std::byte>> parts{a, b};
  EXPECT_EQ(store.readv(id, 2, parts), 10u);
  EXPECT_EQ(to_string(a, 4), "2345");
  EXPECT_EQ(to_string(b, 6), "6789ab");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, ReadvShortAtEof) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abcdef"));
  std::vector<std::byte> a(4), b(4);
  std::vector<std::span<std::byte>> parts{a, b};
  EXPECT_EQ(store.readv(id, 0, parts), 6u);  // short: only 6 bytes exist
  EXPECT_EQ(to_string(a, 4), "abcd");
  EXPECT_EQ(to_string(b, 2), "ef");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, ReadvPastEofReturnsZero) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abc"));
  std::vector<std::byte> a(4);
  std::vector<std::span<std::byte>> parts{a};
  EXPECT_EQ(store.readv(id, 100, parts), 0u);
  store.close(id);
}

TYPED_TEST(BackingStoreContract, OperationsOnClosedIdFail) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.close(id);
  std::vector<std::byte> buf(1);
  EXPECT_THROW(store.read(id, 0, buf), util::IoError);
}

TEST(RealFileStore, RefusesNestedNames) {
  util::TempDir dir;
  RealFileStore store(dir.path());
  EXPECT_THROW(store.open("a/b", true), util::IoError);
  EXPECT_THROW(store.open("", true), util::IoError);
}

TEST(RealFileStore, FilesAppearUnderRoot) {
  util::TempDir dir;
  RealFileStore store(dir.path());
  const FileId id = store.open("visible.bin", true);
  store.write(id, 0, as_bytes("x"));
  store.close(id);
  EXPECT_TRUE(std::filesystem::exists(dir.path() / "visible.bin"));
}

TEST(SimFileStore, AccumulatesModelTime) {
  SimFileStore store(2, 64 * 1024);
  const FileId id = store.open("f", true);
  EXPECT_DOUBLE_EQ(store.consume_model_ms(), 0.0);
  std::vector<std::byte> big(1 << 20);
  store.write(id, 0, big);
  const double t = store.consume_model_ms();
  EXPECT_GT(t, 0.0);
  EXPECT_DOUBLE_EQ(store.consume_model_ms(), 0.0);  // drained
  store.close(id);
}

TEST(SimFileStore, RemoveOfOpenFileFails) {
  SimFileStore store(1, 4096);
  const FileId id = store.open("f", true);
  EXPECT_THROW(store.remove("f"), util::IoError);
  store.close(id);
  store.remove("f");
  EXPECT_FALSE(store.exists("f"));
}

}  // namespace
}  // namespace clio::io
