#include "io/file_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"
#include "util/temp_dir.hpp"

namespace clio::io {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

std::string to_string(std::span<const std::byte> bytes, std::size_t n) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), n);
}

/// Both BackingStore implementations must satisfy the same contract, so the
/// whole suite is typed over a factory.
template <typename MakeStore>
class StoreFixture : public ::testing::Test {
 protected:
  StoreFixture() : store_holder_(MakeStore{}(dir_)), store_(*store_holder_) {}

  util::TempDir dir_;
  std::unique_ptr<BackingStore> store_holder_;
  BackingStore& store_;
};

struct MakeReal {
  std::unique_ptr<BackingStore> operator()(util::TempDir& dir) const {
    return std::make_unique<RealFileStore>(dir.path());
  }
};
struct MakeSim {
  std::unique_ptr<BackingStore> operator()(util::TempDir&) const {
    return std::make_unique<SimFileStore>(4, 64 * 1024);
  }
};

template <typename T>
using BackingStoreContract = StoreFixture<T>;
using StoreTypes = ::testing::Types<MakeReal, MakeSim>;
TYPED_TEST_SUITE(BackingStoreContract, StoreTypes);

TYPED_TEST(BackingStoreContract, CreateWriteReadRoundTrip) {
  auto& store = this->store_;
  const FileId id = store.open("data.bin", /*create=*/true);
  store.write(id, 0, as_bytes("hello world"));
  std::vector<std::byte> buf(11);
  EXPECT_EQ(store.read(id, 0, buf), 11u);
  EXPECT_EQ(to_string(buf, 11), "hello world");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, OpenMissingWithoutCreateFails) {
  auto& store = this->store_;
  EXPECT_THROW(store.open("missing", /*create=*/false), util::IoError);
}

TYPED_TEST(BackingStoreContract, SizeTracksWrites) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  EXPECT_EQ(store.size(id), 0u);
  store.write(id, 100, as_bytes("x"));
  EXPECT_EQ(store.size(id), 101u);  // hole + 1 byte
  store.close(id);
}

TYPED_TEST(BackingStoreContract, HolesReadAsZero) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 10, as_bytes("z"));
  std::vector<std::byte> buf(10);
  EXPECT_EQ(store.read(id, 0, buf), 10u);
  for (auto b : buf) EXPECT_EQ(b, std::byte{0});
  store.close(id);
}

TYPED_TEST(BackingStoreContract, ReadPastEofReturnsZero) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abc"));
  std::vector<std::byte> buf(8);
  EXPECT_EQ(store.read(id, 100, buf), 0u);
  store.close(id);
}

TYPED_TEST(BackingStoreContract, ShortReadAtEof) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abcdef"));
  std::vector<std::byte> buf(10);
  EXPECT_EQ(store.read(id, 4, buf), 2u);
  EXPECT_EQ(to_string(buf, 2), "ef");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, OverwriteInPlace) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("aaaaaa"));
  store.write(id, 2, as_bytes("BB"));
  std::vector<std::byte> buf(6);
  store.read(id, 0, buf);
  EXPECT_EQ(to_string(buf, 6), "aaBBaa");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, TruncateShrinksFile) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("0123456789"));
  store.truncate(id, 4);
  EXPECT_EQ(store.size(id), 4u);
  std::vector<std::byte> buf(10);
  EXPECT_EQ(store.read(id, 0, buf), 4u);
  store.close(id);
}

TYPED_TEST(BackingStoreContract, ExistsReflectsLifecycle) {
  auto& store = this->store_;
  EXPECT_FALSE(store.exists("f"));
  const FileId id = store.open("f", true);
  EXPECT_TRUE(store.exists("f"));
  store.close(id);
  EXPECT_TRUE(store.exists("f"));  // close does not delete
  store.remove("f");
  EXPECT_FALSE(store.exists("f"));
}

TYPED_TEST(BackingStoreContract, ReopenSeesPersistedData) {
  auto& store = this->store_;
  FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("persist"));
  store.close(id);
  id = store.open("f", true);
  std::vector<std::byte> buf(7);
  EXPECT_EQ(store.read(id, 0, buf), 7u);
  EXPECT_EQ(to_string(buf, 7), "persist");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, DoubleOpenSharesId) {
  auto& store = this->store_;
  const FileId a = store.open("f", true);
  const FileId b = store.open("f", true);
  EXPECT_EQ(a, b);
  store.close(a);
  store.close(b);
}

TYPED_TEST(BackingStoreContract, ReadvScattersContiguousBytesInOrder) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("0123456789abcdef"));
  std::vector<std::byte> a(4), b(6);
  std::vector<std::span<std::byte>> parts{a, b};
  EXPECT_EQ(store.readv(id, 2, parts), 10u);
  EXPECT_EQ(to_string(a, 4), "2345");
  EXPECT_EQ(to_string(b, 6), "6789ab");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, ReadvShortAtEof) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abcdef"));
  std::vector<std::byte> a(4), b(4);
  std::vector<std::span<std::byte>> parts{a, b};
  EXPECT_EQ(store.readv(id, 0, parts), 6u);  // short: only 6 bytes exist
  EXPECT_EQ(to_string(a, 4), "abcd");
  EXPECT_EQ(to_string(b, 2), "ef");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, ReadvPastEofReturnsZero) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abc"));
  std::vector<std::byte> a(4);
  std::vector<std::span<std::byte>> parts{a};
  EXPECT_EQ(store.readv(id, 100, parts), 0u);
  store.close(id);
}

TYPED_TEST(BackingStoreContract, OperationsOnClosedIdFail) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.close(id);
  std::vector<std::byte> buf(1);
  EXPECT_THROW(store.read(id, 0, buf), util::IoError);
}

TYPED_TEST(BackingStoreContract, ReadvWithEmptyVectorReturnsZero) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abc"));
  EXPECT_EQ(store.readv(id, 0, {}), 0u);
  store.close(id);
}

TYPED_TEST(BackingStoreContract, ReadvZeroLengthPartsDoNotStopTheScatter) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("01234567"));
  std::vector<std::byte> a(4), c(4);
  std::span<std::byte> empty;
  // An empty part in the middle contributes zero bytes but must not be
  // mistaken for a short read that ends the scatter.
  std::vector<std::span<std::byte>> parts{a, empty, c};
  EXPECT_EQ(store.readv(id, 0, parts), 8u);
  EXPECT_EQ(to_string(a, 4), "0123");
  EXPECT_EQ(to_string(c, 4), "4567");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, ReadvPartEndingExactlyAtEof) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abcdef"));
  std::vector<std::byte> a(6), b(4, std::byte{'?'});
  std::vector<std::span<std::byte>> parts{a, b};
  // The first part consumes the whole file; the second sees clean EOF.
  EXPECT_EQ(store.readv(id, 0, parts), 6u);
  EXPECT_EQ(to_string(a, 6), "abcdef");
  EXPECT_EQ(static_cast<char>(b[0]), '?');  // untouched
  store.close(id);
}

TYPED_TEST(BackingStoreContract, ReadvStraddlingEofStopsMidPart) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("0123456789"));
  std::vector<std::byte> a(4), b(4), c(4, std::byte{'?'});
  std::vector<std::span<std::byte>> parts{a, b, c};
  // Offset 4: six bytes remain — part a fills, part b fills half, part c
  // is never reached.
  EXPECT_EQ(store.readv(id, 4, parts), 6u);
  EXPECT_EQ(to_string(a, 4), "4567");
  EXPECT_EQ(to_string(b, 2), "89");
  EXPECT_EQ(static_cast<char>(c[0]), '?');
  store.close(id);
}

TYPED_TEST(BackingStoreContract, WritevGathersPartsContiguously) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  const std::string a = "head", b = "-", c = "tail";
  std::vector<std::span<const std::byte>> parts{as_bytes(a), as_bytes(b),
                                                as_bytes(c)};
  store.writev(id, 2, parts);
  EXPECT_EQ(store.size(id), 11u);  // 2-byte hole + 9 payload bytes
  std::vector<std::byte> buf(11);
  EXPECT_EQ(store.read(id, 0, buf), 11u);
  EXPECT_EQ(to_string(buf, 11).substr(2), "head-tail");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, WritevSkipsZeroLengthParts) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  const std::string a = "aa", c = "cc";
  std::span<const std::byte> empty;
  std::vector<std::span<const std::byte>> parts{as_bytes(a), empty,
                                                as_bytes(c)};
  store.writev(id, 0, parts);
  EXPECT_EQ(store.size(id), 4u);
  std::vector<std::byte> buf(4);
  store.read(id, 0, buf);
  EXPECT_EQ(to_string(buf, 4), "aacc");
  store.close(id);
}

TYPED_TEST(BackingStoreContract, WritevWithEmptyVectorIsANoOp) {
  auto& store = this->store_;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("keep"));
  store.writev(id, 2, {});
  EXPECT_EQ(store.size(id), 4u);
  std::vector<std::byte> buf(4);
  store.read(id, 0, buf);
  EXPECT_EQ(to_string(buf, 4), "keep");
  store.close(id);
}

// ------------------------------------------------- base-class fallbacks ----

/// Implements only the pure-virtual surface, so readv/writev run the
/// BackingStore base-class per-part fallbacks.  Counts scalar calls to
/// prove the fallback decomposition.
class MinimalStore final : public BackingStore {
 public:
  FileId open(const std::string& name, bool create) override {
    if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
    util::check<util::IoError>(create, "MinimalStore: no such file");
    const auto id = static_cast<FileId>(files_.size());
    files_.emplace_back();
    by_name_.emplace(name, id);
    return id;
  }
  void close(FileId) override {}
  [[nodiscard]] std::uint64_t size(FileId id) const override {
    return files_.at(id).size();
  }
  void truncate(FileId id, std::uint64_t n) override { files_.at(id).resize(n); }
  std::size_t read(FileId id, std::uint64_t offset,
                   std::span<std::byte> out) override {
    read_calls++;
    const auto& data = files_.at(id);
    if (offset >= data.size()) return 0;
    const std::size_t n =
        std::min<std::size_t>(out.size(), data.size() - offset);
    if (n > 0) std::memcpy(out.data(), data.data() + offset, n);
    return n;
  }
  void write(FileId id, std::uint64_t offset,
             std::span<const std::byte> data) override {
    write_calls++;
    auto& file = files_.at(id);
    if (offset + data.size() > file.size()) file.resize(offset + data.size());
    if (!data.empty()) {
      std::memcpy(file.data() + offset, data.data(), data.size());
    }
  }
  [[nodiscard]] bool exists(const std::string& name) const override {
    return by_name_.contains(name);
  }
  [[nodiscard]] FileId lookup(const std::string& name) const override {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? kInvalidFile : it->second;
  }
  void remove(const std::string& name) override { by_name_.erase(name); }

  std::uint64_t read_calls = 0;
  std::uint64_t write_calls = 0;

 private:
  std::vector<std::vector<std::byte>> files_;
  std::unordered_map<std::string, FileId> by_name_;
};

TEST(BackingStoreFallback, WritevFallsBackToOneWritePerPart) {
  MinimalStore store;
  const FileId id = store.open("f", true);
  const std::string a = "12", b = "34", c = "56";
  std::vector<std::span<const std::byte>> parts{as_bytes(a), as_bytes(b),
                                                as_bytes(c)};
  store.writev(id, 0, parts);
  EXPECT_EQ(store.write_calls, 3u);
  std::vector<std::byte> buf(6);
  EXPECT_EQ(store.read(id, 0, buf), 6u);
  EXPECT_EQ(to_string(buf, 6), "123456");
}

TEST(BackingStoreFallback, ReadvFallsBackToOneReadPerPart) {
  MinimalStore store;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abcdefgh"));
  store.read_calls = 0;
  std::vector<std::byte> a(3), b(3), c(2);
  std::vector<std::span<std::byte>> parts{a, b, c};
  EXPECT_EQ(store.readv(id, 0, parts), 8u);
  EXPECT_EQ(store.read_calls, 3u);
  EXPECT_EQ(to_string(a, 3), "abc");
  EXPECT_EQ(to_string(b, 3), "def");
  EXPECT_EQ(to_string(c, 2), "gh");
}

TEST(BackingStoreFallback, ReadvFallbackStopsAtTheFirstShortRead) {
  MinimalStore store;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abcde"));
  store.read_calls = 0;
  std::vector<std::byte> a(4), b(4), c(4, std::byte{'?'});
  std::vector<std::span<std::byte>> parts{a, b, c};
  // Part b comes back short (1 of 4 bytes): the fallback must stop there
  // and never issue the read for part c.
  EXPECT_EQ(store.readv(id, 0, parts), 5u);
  EXPECT_EQ(store.read_calls, 2u);
  EXPECT_EQ(static_cast<char>(c[0]), '?');
}

TEST(BackingStoreFallback, ReadvFallbackTreatsZeroLengthPartsAsProgress) {
  MinimalStore store;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("wxyz"));
  store.read_calls = 0;
  std::vector<std::byte> a(2), c(2);
  std::span<std::byte> empty;
  // A zero-length part reads zero bytes, which must not register as a
  // short read that ends the scatter early.
  std::vector<std::span<std::byte>> parts{a, empty, c};
  EXPECT_EQ(store.readv(id, 0, parts), 4u);
  EXPECT_EQ(to_string(a, 2), "wx");
  EXPECT_EQ(to_string(c, 2), "yz");
}

TEST(BackingStoreFallback, ReadvFallbackPastEofReturnsZero) {
  MinimalStore store;
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abc"));
  std::vector<std::byte> a(4);
  std::vector<std::span<std::byte>> parts{a};
  EXPECT_EQ(store.readv(id, 100, parts), 0u);
}

TEST(RealFileStore, RefusesNestedNames) {
  util::TempDir dir;
  RealFileStore store(dir.path());
  EXPECT_THROW(store.open("a/b", true), util::IoError);
  EXPECT_THROW(store.open("", true), util::IoError);
}

TEST(RealFileStore, FilesAppearUnderRoot) {
  util::TempDir dir;
  RealFileStore store(dir.path());
  const FileId id = store.open("visible.bin", true);
  store.write(id, 0, as_bytes("x"));
  store.close(id);
  EXPECT_TRUE(std::filesystem::exists(dir.path() / "visible.bin"));
}

TEST(RealFileStore, IdleFdCacheKeepsDescriptorsUsableAcrossReopen) {
  util::TempDir dir;
  RealFileStore store(dir.path(), /*idle_fd_cache=*/4);
  const FileId id = store.open("hot.bin", true);
  store.write(id, 0, as_bytes("abc"));
  store.close(id);
  // With the cache, the id stays usable after close (the descriptor is
  // parked, not retired) and a reopen is a pure hash hit.
  std::vector<std::byte> buf(3);
  EXPECT_EQ(store.read(id, 0, buf), 3u);
  EXPECT_EQ(to_string(buf, 3), "abc");
  const FileId again = store.open("hot.bin", false);
  EXPECT_EQ(again, id);
  store.close(again);
}

TEST(RealFileStore, IdleFdCacheEvictsBeyondCap) {
  util::TempDir dir;
  RealFileStore store(dir.path(), /*idle_fd_cache=*/2);
  // Three one-shot files cycle through a cache of two: the oldest idle
  // descriptor is really closed, and its id goes back to strict
  // operations-fail-after-close semantics until reopened.
  const FileId a = store.open("a.bin", true);
  const FileId b = store.open("b.bin", true);
  const FileId c = store.open("c.bin", true);
  store.write(a, 0, as_bytes("A"));
  store.close(a);
  store.close(b);
  store.close(c);  // cache holds {b, c}; a was trimmed
  std::vector<std::byte> buf(1);
  EXPECT_THROW(static_cast<void>(store.read(a, 0, buf)), util::IoError);
  // Reopening a revives the same id over the same bytes.
  EXPECT_EQ(store.open("a.bin", false), a);
  EXPECT_EQ(store.read(a, 0, buf), 1u);
  EXPECT_EQ(to_string(buf, 1), "A");
  store.close(a);
}

TEST(RealFileStore, IdleCachedFileCanBeRemoved) {
  util::TempDir dir;
  RealFileStore store(dir.path(), /*idle_fd_cache=*/4);
  const FileId id = store.open("gone.bin", true);
  store.write(id, 0, as_bytes("x"));
  store.close(id);  // descriptor parked in the cache
  store.remove("gone.bin");
  EXPECT_FALSE(store.exists("gone.bin"));
  EXPECT_FALSE(std::filesystem::exists(dir.path() / "gone.bin"));
}

TEST(RealFileStore, SizeCacheTracksWritesWritevAndTruncate) {
  util::TempDir dir;
  RealFileStore store(dir.path());
  const FileId id = store.open("sz.bin", true);
  EXPECT_EQ(store.size(id), 0u);  // first query fstats and caches
  store.write(id, 0, as_bytes("0123456789"));
  EXPECT_EQ(store.size(id), 10u);
  store.write(id, 4, as_bytes("abc"));  // overwrite inside: no growth
  EXPECT_EQ(store.size(id), 10u);
  const std::string tail = "TAIL";
  std::vector<std::span<const std::byte>> parts{as_bytes(tail)};
  store.writev(id, 20, parts);  // gather extends past a hole
  EXPECT_EQ(store.size(id), 24u);
  store.truncate(id, 7);
  EXPECT_EQ(store.size(id), 7u);
  // The cached value matches what a fresh stat of the real file says.
  EXPECT_EQ(std::filesystem::file_size(dir.path() / "sz.bin"), 7u);
  store.close(id);
}

TEST(RealFileStore, ExistsAnswersFromTheNameTable) {
  util::TempDir dir;
  RealFileStore store(dir.path());
  EXPECT_FALSE(store.exists("k.bin"));
  const FileId id = store.open("k.bin", true);
  EXPECT_TRUE(store.exists("k.bin"));
  store.close(id);
  // Closed (and with no idle cache, retired): the binding still proves
  // existence without a stat.
  EXPECT_TRUE(store.exists("k.bin"));
  store.remove("k.bin");
  EXPECT_FALSE(store.exists("k.bin"));
}

TEST(SimFileStore, AccumulatesModelTime) {
  SimFileStore store(2, 64 * 1024);
  const FileId id = store.open("f", true);
  EXPECT_DOUBLE_EQ(store.consume_model_ms(), 0.0);
  std::vector<std::byte> big(1 << 20);
  store.write(id, 0, big);
  const double t = store.consume_model_ms();
  EXPECT_GT(t, 0.0);
  EXPECT_DOUBLE_EQ(store.consume_model_ms(), 0.0);  // drained
  store.close(id);
}

TEST(SimFileStore, RemoveOfOpenFileFails) {
  SimFileStore store(1, 4096);
  const FileId id = store.open("f", true);
  EXPECT_THROW(store.remove("f"), util::IoError);
  store.close(id);
  store.remove("f");
  EXPECT_FALSE(store.exists("f"));
}

}  // namespace
}  // namespace clio::io
