// The uniform decorator seam: every BackingStore decorator derives from
// StoreDecorator, which forwards all operations verbatim — including the
// vectored data ops, so a decorator that overrides nothing never silently
// de-vectorizes the pool's coalesced gathers — and exposes bind_stats() so
// bind_chain() can bind one IoStats down a chain of any shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "io/fault_store.hpp"
#include "io/file_store.hpp"
#include "io/io_stats.hpp"
#include "io/retrying_store.hpp"
#include "io/store_decorator.hpp"
#include "util/error.hpp"

namespace clio::io {
namespace {

/// The do-nothing decorator: overrides nothing, so every forward is the
/// base's.  If the base forgot an operation this test stops compiling or
/// stops round-tripping.
struct PassThrough final : StoreDecorator {
  using StoreDecorator::StoreDecorator;
};

std::vector<std::byte> bytes_of(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(StoreDecorator, ForwardsEveryOperationVerbatim) {
  SimFileStore sim(2, 4096);
  PassThrough deco(sim);

  const FileId id = deco.open("a.bin", true);
  EXPECT_EQ(deco.lookup("a.bin"), id);
  EXPECT_TRUE(deco.exists("a.bin"));
  EXPECT_EQ(&deco.inner(), static_cast<BackingStore*>(&sim));

  const auto payload = bytes_of({1, 2, 3, 4});
  deco.write(id, 0, payload);
  EXPECT_EQ(deco.size(id), 4u);

  std::vector<std::byte> buf(4);
  EXPECT_EQ(deco.read(id, 0, buf), 4u);
  EXPECT_EQ(buf, payload);

  // The vectored ops forward as one gather, not per-part scalar calls.
  std::vector<std::byte> p0(2), p1(2);
  const std::span<std::byte> parts[] = {p0, p1};
  EXPECT_EQ(deco.readv(id, 0, parts), 4u);
  EXPECT_EQ(p0, bytes_of({1, 2}));
  EXPECT_EQ(p1, bytes_of({3, 4}));

  const auto w0 = bytes_of({9, 9});
  const auto w1 = bytes_of({7, 7});
  const std::span<const std::byte> wparts[] = {w0, w1};
  deco.writev(id, 0, wparts);
  EXPECT_EQ(deco.read(id, 0, buf), 4u);
  EXPECT_EQ(buf, bytes_of({9, 9, 7, 7}));

  deco.truncate(id, 2);
  EXPECT_EQ(deco.size(id), 2u);
  deco.close(id);
  deco.remove("a.bin");
  EXPECT_FALSE(deco.exists("a.bin"));
}

TEST(StoreDecorator, OwnedInnerStoreIsKeptAlive) {
  RetryingStore retry(std::make_unique<SimFileStore>(2, 4096));
  const FileId id = retry.open("owned.bin", true);
  retry.write(id, 0, bytes_of({5}));
  std::vector<std::byte> buf(1);
  EXPECT_EQ(retry.read(id, 0, buf), 1u);
  EXPECT_EQ(buf[0], std::byte{5});
}

TEST(StoreDecorator, NullOwnedInnerIsAConfigError) {
  EXPECT_THROW(PassThrough deco(std::unique_ptr<BackingStore>{}),
               util::ConfigError);
}

TEST(VectoredStatsStore, TimesOnlyTheVectoredOps) {
  SimFileStore sim(2, 4096);
  IoStats stats;
  VectoredStatsStore vss(sim, &stats);
  const FileId id = vss.open("v.bin", true);

  // Scalar ops stay untimed: ManagedFile accounts those at the trace-op
  // layer and double-counting would skew the totals.
  vss.write(id, 0, bytes_of({1, 2, 3, 4}));
  std::vector<std::byte> buf(4);
  static_cast<void>(vss.read(id, 0, buf));
  EXPECT_EQ(stats.op_snapshot(IoOp::kRead).count, 0u);
  EXPECT_EQ(stats.op_snapshot(IoOp::kWrite).count, 0u);

  std::vector<std::byte> p0(2), p1(2);
  const std::span<std::byte> parts[] = {p0, p1};
  EXPECT_EQ(vss.readv(id, 0, parts), 4u);
  const auto w0 = bytes_of({1, 1});
  const std::span<const std::byte> wparts[] = {w0};
  vss.writev(id, 4, wparts);

  EXPECT_EQ(stats.op_snapshot(IoOp::kReadv).count, 1u);
  EXPECT_EQ(stats.op_snapshot(IoOp::kReadv).bytes, 4u);
  EXPECT_EQ(stats.op_snapshot(IoOp::kWritev).count, 1u);
  EXPECT_EQ(stats.op_snapshot(IoOp::kWritev).bytes, 2u);
}

TEST(VectoredStatsStore, UnboundIsFullyTransparent) {
  SimFileStore sim(2, 4096);
  VectoredStatsStore vss(sim);  // no stats bound
  const FileId id = vss.open("t.bin", true);
  const auto w0 = bytes_of({3, 3, 3});
  const std::span<const std::byte> wparts[] = {w0};
  vss.writev(id, 0, wparts);
  std::vector<std::byte> buf(3);
  EXPECT_EQ(vss.read(id, 0, buf), 3u);
  EXPECT_EQ(buf, w0);
}

TEST(StoreDecorator, BindChainBindsEveryLayerWhateverTheShape) {
  // RetryingStore over FaultStore over VectoredStatsStore over the
  // terminal store — bind_chain must reach all three decorators without
  // the caller knowing the shape.
  SimFileStore sim(2, 4096);
  VectoredStatsStore vss(sim);
  FaultStore faults(vss);
  RetryPolicy policy;
  policy.backoff.base_delay_us = 10;
  policy.backoff.max_delay_us = 50;
  RetryingStore retry(faults, policy);

  IoStats stats;
  StoreDecorator::bind_chain(retry, &stats);

  const FileId id = retry.open("chain.bin", true);
  const auto w0 = bytes_of({8, 8});
  const std::span<const std::byte> wparts[] = {w0};
  retry.writev(id, 0, wparts);

  // One transient fault on the next readv: the retry layer absorbs it and
  // mirrors the retry into the bound stats; the vectored-stats layer times
  // both backing attempts.
  faults.fail_next(FaultOp::kReadv, 1);
  std::vector<std::byte> p0(2);
  const std::span<std::byte> parts[] = {p0};
  EXPECT_EQ(retry.readv(id, 0, parts), 2u);
  EXPECT_EQ(p0, w0);

  EXPECT_EQ(stats.resilience().retries, 1u);
  EXPECT_EQ(stats.resilience().absorbed_faults, 1u);
  EXPECT_EQ(stats.op_snapshot(IoOp::kWritev).count, 1u);
  // The faulted first attempt never reached the stats layer (FaultStore
  // throws before forwarding), so exactly one readv was timed.
  EXPECT_EQ(stats.op_snapshot(IoOp::kReadv).count, 1u);
}

TEST(StoreDecorator, BindChainOnATerminalStoreIsANoOp) {
  SimFileStore sim(2, 4096);
  IoStats stats;
  StoreDecorator::bind_chain(sim, &stats);  // no decorator layers: nothing
  EXPECT_EQ(stats.total_bytes(), 0u);
}

}  // namespace
}  // namespace clio::io
