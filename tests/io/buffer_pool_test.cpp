#include "io/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"

namespace clio::io {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

/// In-memory BackingStore that counts backing accesses, for asserting that
/// flush coalescing issues fewer write calls than dirty pages.
class CountingStore final : public BackingStore {
 public:
  FileId open(const std::string& name, bool create) override {
    if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
    util::check<util::IoError>(create, "CountingStore: no such file");
    const auto id = static_cast<FileId>(files_.size());
    files_.emplace_back();
    by_name_.emplace(name, id);
    return id;
  }
  void close(FileId) override {}
  [[nodiscard]] std::uint64_t size(FileId id) const override {
    return files_.at(id).size();
  }
  void truncate(FileId id, std::uint64_t new_size) override {
    files_.at(id).resize(new_size);
  }
  std::size_t read(FileId id, std::uint64_t offset,
                   std::span<std::byte> out) override {
    read_calls++;
    const auto& data = files_.at(id);
    if (offset >= data.size()) return 0;
    const std::size_t n =
        std::min<std::size_t>(out.size(), data.size() - offset);
    std::memcpy(out.data(), data.data() + offset, n);
    return n;
  }
  void write(FileId id, std::uint64_t offset,
             std::span<const std::byte> data) override {
    maybe_fail();
    write_calls++;
    pages_written += 1;
    auto& file = files_.at(id);
    if (offset + data.size() > file.size()) file.resize(offset + data.size());
    std::memcpy(file.data() + offset, data.data(), data.size());
  }
  void writev(FileId id, std::uint64_t offset,
              std::span<const std::span<const std::byte>> parts) override {
    maybe_fail();
    writev_calls++;
    pages_written += parts.size();
    auto& file = files_.at(id);
    std::uint64_t total = 0;
    for (const auto& p : parts) total += p.size();
    if (offset + total > file.size()) file.resize(offset + total);
    for (const auto& p : parts) {
      std::memcpy(file.data() + offset, p.data(), p.size());
      offset += p.size();
    }
  }
  [[nodiscard]] bool exists(const std::string& name) const override {
    return by_name_.contains(name);
  }
  [[nodiscard]] FileId lookup(const std::string& name) const override {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? kInvalidFile : it->second;
  }
  void remove(const std::string& name) override { by_name_.erase(name); }

  std::atomic<std::uint64_t> read_calls{0};
  std::uint64_t write_calls = 0;
  std::uint64_t writev_calls = 0;
  std::uint64_t pages_written = 0;
  int fail_writes = 0;  ///< next N write/writev calls throw

 private:
  void maybe_fail() {
    if (fail_writes > 0) {
      fail_writes--;
      throw util::IoError("CountingStore: injected write failure");
    }
  }

  std::vector<std::vector<std::byte>> files_;
  std::unordered_map<std::string, FileId> by_name_;
};

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest()
      : store_(dir_.path()),
        pool_(store_, BufferPoolConfig{.page_size = 256,
                                       .capacity_pages = 4}) {
    file_ = store_.open("data.bin", true);
    // 8 pages of recognizable content.
    std::string content;
    for (int p = 0; p < 8; ++p) content += std::string(256, char('a' + p));
    store_.write(file_, 0, as_bytes(content));
  }

  util::TempDir dir_;
  RealFileStore store_;
  BufferPool pool_;
  FileId file_ = kInvalidFile;
};

TEST_F(BufferPoolTest, RejectsSillyConfig) {
  EXPECT_THROW(BufferPool(store_, BufferPoolConfig{.page_size = 1,
                                                   .capacity_pages = 4}),
               util::ConfigError);
  EXPECT_THROW(BufferPool(store_, BufferPoolConfig{.page_size = 256,
                                                   .capacity_pages = 0}),
               util::ConfigError);
}

TEST_F(BufferPoolTest, MissThenHit) {
  {
    auto g = pool_.pin(file_, 0);
    EXPECT_EQ(static_cast<char>(g.data()[0]), 'a');
  }
  EXPECT_EQ(pool_.stats().misses, 1u);
  {
    auto g = pool_.pin(file_, 0);
    EXPECT_EQ(static_cast<char>(g.data()[10]), 'a');
  }
  EXPECT_EQ(pool_.stats().hits, 1u);
}

TEST_F(BufferPoolTest, ValidBytesReflectsFileContent) {
  auto g = pool_.pin(file_, 7);  // last full page
  EXPECT_EQ(g.valid_bytes(), 256u);
  auto past = pool_.pin(file_, 100);  // way past EOF
  EXPECT_EQ(past.valid_bytes(), 0u);
}

TEST_F(BufferPoolTest, PastEofPageIsZeroFilled) {
  auto g = pool_.pin(file_, 100);
  for (auto b : g.data()) EXPECT_EQ(b, std::byte{0});
}

TEST_F(BufferPoolTest, LruEvictsOldestUnpinned) {
  for (std::uint64_t p = 0; p < 4; ++p) pool_.pin(file_, p);
  EXPECT_EQ(pool_.resident_pages(), 4u);
  pool_.pin(file_, 4);  // must evict page 0 (least recently used)
  EXPECT_EQ(pool_.stats().evictions, 1u);
  EXPECT_FALSE(pool_.contains(file_, 0));
  EXPECT_TRUE(pool_.contains(file_, 4));
}

TEST_F(BufferPoolTest, TouchOrderAffectsEviction) {
  for (std::uint64_t p = 0; p < 4; ++p) pool_.pin(file_, p);
  pool_.pin(file_, 0);  // refresh page 0; page 1 becomes LRU
  pool_.pin(file_, 5);
  EXPECT_TRUE(pool_.contains(file_, 0));
  EXPECT_FALSE(pool_.contains(file_, 1));
}

TEST_F(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  auto guard = pool_.pin(file_, 0);
  for (std::uint64_t p = 1; p < 8; ++p) pool_.pin(file_, p);
  EXPECT_TRUE(pool_.contains(file_, 0));
}

TEST_F(BufferPoolTest, AllPinnedThrows) {
  std::vector<BufferPool::PageGuard> guards;
  for (std::uint64_t p = 0; p < 4; ++p) guards.push_back(pool_.pin(file_, p));
  EXPECT_THROW(pool_.pin(file_, 4), util::IoError);
}

TEST_F(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  {
    auto g = pool_.pin(file_, 0);
    g.data()[0] = static_cast<std::byte>('Z');
    g.mark_dirty(256);
  }
  for (std::uint64_t p = 1; p <= 4; ++p) pool_.pin(file_, p);  // evict page 0
  EXPECT_GE(pool_.stats().writebacks, 1u);
  std::byte b;
  store_.read(file_, 0, std::span<std::byte>(&b, 1));
  EXPECT_EQ(static_cast<char>(b), 'Z');
}

TEST_F(BufferPoolTest, FlushFilePersistsDirtyPages) {
  {
    auto g = pool_.pin(file_, 2);
    g.data()[5] = static_cast<std::byte>('Q');
    g.mark_dirty(256);
  }
  pool_.flush_file(file_);
  std::byte b;
  store_.read(file_, 2 * 256 + 5, std::span<std::byte>(&b, 1));
  EXPECT_EQ(static_cast<char>(b), 'Q');
}

TEST_F(BufferPoolTest, WritebackRespectsValidBytes) {
  // A fresh page past EOF written only partially must not extend the file
  // to a full page.
  const FileId small = store_.open("small.bin", true);
  {
    auto g = pool_.pin(small, 0);
    std::memcpy(g.data().data(), "hi", 2);
    g.mark_dirty(2);
  }
  pool_.flush_file(small);
  EXPECT_EQ(store_.size(small), 2u);
  store_.close(small);
}

TEST_F(BufferPoolTest, PrefetchLoadsWithoutCountingMiss) {
  EXPECT_TRUE(pool_.prefetch(file_, 3));
  EXPECT_EQ(pool_.stats().prefetches, 1u);
  EXPECT_EQ(pool_.stats().misses, 0u);
  EXPECT_FALSE(pool_.prefetch(file_, 3));  // already resident
  auto g = pool_.pin(file_, 3);
  EXPECT_EQ(pool_.stats().hits, 1u);
  EXPECT_EQ(static_cast<char>(g.data()[0]), 'd');
}

TEST_F(BufferPoolTest, DiscardDropsWithoutWriteback) {
  {
    auto g = pool_.pin(file_, 1);
    g.data()[0] = static_cast<std::byte>('X');
    g.mark_dirty(256);
  }
  pool_.discard_file(file_);
  EXPECT_EQ(pool_.resident_pages(), 0u);
  EXPECT_EQ(pool_.stats().writebacks, 0u);
  std::byte b;
  store_.read(file_, 256, std::span<std::byte>(&b, 1));
  EXPECT_EQ(static_cast<char>(b), 'b');  // original content intact
}

TEST_F(BufferPoolTest, MarkDirtyBeyondPageThrows) {
  auto g = pool_.pin(file_, 0);
  EXPECT_THROW(g.mark_dirty(257), util::IoError);
}

TEST_F(BufferPoolTest, MovedFromGuardIsEmpty) {
  auto a = pool_.pin(file_, 0);
  auto b = std::move(a);
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(b.empty());
  EXPECT_THROW(static_cast<void>(a.data()), util::IoError);
}

TEST_F(BufferPoolTest, GuardsFromTwoFilesAreIndependent) {
  const FileId other = store_.open("other.bin", true);
  store_.write(other, 0, as_bytes(std::string(256, 'z')));
  auto g1 = pool_.pin(file_, 0);
  auto g2 = pool_.pin(other, 0);
  EXPECT_EQ(static_cast<char>(g1.data()[0]), 'a');
  EXPECT_EQ(static_cast<char>(g2.data()[0]), 'z');
  store_.close(other);
}

// ----------------------------------------------------- sharding & hashing ----

TEST(PageKeyHashTest, MixesBothFieldsIntoLowBits) {
  // The old (file << 48) ^ page_no scheme made page N of every file collide
  // modulo any small shard/bucket count.  The mixed hash must not.
  PageKeyHash hash;
  std::set<std::size_t> full;
  for (FileId f = 1; f <= 4; ++f) {
    for (std::uint64_t p = 0; p < 1000; ++p) {
      full.insert(hash(PageKey{f, p}));
    }
  }
  EXPECT_EQ(full.size(), 4000u);  // no full-width collisions at all
  // Same page of different files should usually land on different shards.
  std::size_t same_shard = 0;
  for (std::uint64_t p = 0; p < 1000; ++p) {
    if (hash(PageKey{1, p}) % 16 == hash(PageKey{2, p}) % 16) same_shard++;
  }
  EXPECT_LT(same_shard, 250u);  // ~62/1000 expected for a uniform hash
}

TEST(ShardedBufferPoolTest, AutoShardingKeepsSmallPoolsSingleShard) {
  util::TempDir dir;
  RealFileStore store(dir.path());
  BufferPool small(store, BufferPoolConfig{.page_size = 256,
                                           .capacity_pages = 4});
  EXPECT_EQ(small.shard_count(), 1u);  // exact global LRU for tiny pools
  BufferPool big(store, BufferPoolConfig{.page_size = 4096,
                                         .capacity_pages = 4096});
  EXPECT_EQ(big.shard_count(), 16u);
  BufferPool manual(store, BufferPoolConfig{.page_size = 256,
                                            .capacity_pages = 64,
                                            .shards = 8});
  EXPECT_EQ(manual.shard_count(), 8u);
  EXPECT_THROW(BufferPool(store, BufferPoolConfig{.page_size = 256,
                                                  .capacity_pages = 4,
                                                  .shards = 8}),
               util::ConfigError);
}

TEST(ShardedBufferPoolTest, StatsStayExactAcrossShards) {
  util::TempDir dir;
  RealFileStore store(dir.path());
  const FileId file = store.open("data.bin", true);
  std::string content;
  for (int p = 0; p < 64; ++p) content += std::string(256, char('!' + p));
  store.write(file, 0, as_bytes(content));

  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 128,
                                          .shards = 8});
  for (std::uint64_t p = 0; p < 64; ++p) pool.pin(file, p);  // all miss
  for (std::uint64_t p = 0; p < 64; ++p) pool.pin(file, p);  // all hit
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 64u);
  EXPECT_EQ(stats.hits, 64u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(pool.resident_pages(), 64u);
}

TEST(ShardedBufferPoolTest, MultithreadedDisjointPinsKeepDataAndStatsExact) {
  util::TempDir dir;
  RealFileStore store(dir.path());
  const FileId file = store.open("data.bin", true);
  constexpr std::uint64_t kPages = 64;
  std::string content;
  for (std::uint64_t p = 0; p < kPages; ++p) {
    content += std::string(256, char('a' + p % 26));
  }
  store.write(file, 0, as_bytes(content));

  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 256,
                                          .shards = 8});
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  std::atomic<int> bad_bytes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(7 * t + 1);
      const std::uint64_t base = t * (kPages / kThreads);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t page = base + rng.uniform_u64(kPages / kThreads);
        auto g = pool.pin(file, page);
        if (static_cast<char>(g.data()[0]) != char('a' + page % 26)) {
          bad_bytes++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad_bytes.load(), 0);
  pool.debug_validate();
  const PoolStats stats = pool.stats();
  // Totals must be exact after merging shard counters: every pin was either
  // a hit or a miss, and with no eviction pressure each page missed once.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.misses, kPages);
}

TEST(ShardedBufferPoolTest, MultithreadedSharedPageLoadsOnlyOnce) {
  util::TempDir dir;
  RealFileStore store(dir.path());
  const FileId file = store.open("data.bin", true);
  store.write(file, 0, as_bytes(std::string(4 * 256, 'x')));

  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 64,
                                          .shards = 4});
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::atomic<int> bad_bytes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        auto g = pool.pin(file, static_cast<std::uint64_t>(i % 4));
        if (static_cast<char>(g.data()[0]) != 'x') bad_bytes++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad_bytes.load(), 0);
  const PoolStats stats = pool.stats();
  // The io-busy latch dedupes concurrent faults on the same page: each of
  // the 4 pages is read from the backing store exactly once, and every
  // other pin counts as a hit.
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ShardedBufferPoolTest, WorkingSetEqualToCapacityStaysResident) {
  // Frames are pooled globally, not statically split across shards, so a
  // working set of exactly capacity_pages must stay fully resident no
  // matter how its pages hash — this is what keeps the paper's warm-phase
  // measurements warm.
  CountingStore store;
  const FileId file = store.open("data.bin", true);
  constexpr std::uint64_t kPages = 512;
  std::vector<std::byte> page(256, std::byte{'w'});
  for (std::uint64_t p = 0; p < kPages; ++p) store.write(file, p * 256, page);

  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = kPages,
                                          .shards = 16});
  for (std::uint64_t p = 0; p < kPages; ++p) pool.pin(file, p);
  EXPECT_EQ(pool.resident_pages(), kPages);
  EXPECT_EQ(pool.stats().evictions, 0u);
  for (std::uint64_t p = 0; p < kPages; ++p) pool.pin(file, p);
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits, kPages);  // second pass is 100% warm
  EXPECT_EQ(stats.misses, kPages);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ShardedBufferPoolTest, PinsConcentratedInOneShardDoNotExhaustPool) {
  // Durably pinning many pages that happen to hash to one shard must not
  // produce "all frames pinned" while other frames are free: frame
  // allocation falls back to the global free list and sibling shards.
  util::TempDir dir;
  RealFileStore store(dir.path());
  const FileId file = store.open("data.bin", true);
  std::string content;
  for (int p = 0; p < 64; ++p) content += std::string(256, char('a' + p % 26));
  store.write(file, 0, as_bytes(content));

  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 16,
                                          .shards = 4});
  // Pin 8 pages of one shard (more than any static 16/4 split could hold).
  auto hash_shard = [&](std::uint64_t p) {
    return PageKeyHash{}(PageKey{file, p}) % pool.shard_count();
  };
  std::vector<BufferPool::PageGuard> guards;
  for (std::uint64_t p = 0; p < 64 && guards.size() < 8; ++p) {
    if (hash_shard(p) == 0) guards.push_back(pool.pin(file, p));
  }
  ASSERT_EQ(guards.size(), 8u);
  // The remaining 8 frames still serve any page, in shard 0 or not.
  for (std::uint64_t p = 0; p < 64; ++p) {
    auto g = pool.pin(file, p);
    EXPECT_EQ(static_cast<char>(g.data()[0]), char('a' + p % 26)) << p;
  }
}

TEST(ShardedBufferPoolTest, EvictionWithAllButOneFramePinnedPerShard) {
  util::TempDir dir;
  RealFileStore store(dir.path());
  const FileId file = store.open("data.bin", true);
  std::string content;
  for (int p = 0; p < 64; ++p) content += std::string(256, char('a' + p % 26));
  store.write(file, 0, as_bytes(content));

  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 8,
                                          .shards = 2});
  // Compute each page's shard the same way the pool does, then pin
  // all-but-one frame of every shard.
  auto shard_of = [&](std::uint64_t p) {
    return PageKeyHash{}(PageKey{file, p}) % pool.shard_count();
  };
  std::vector<std::size_t> pinned_per_shard(pool.shard_count(), 0);
  std::vector<BufferPool::PageGuard> guards;
  for (std::uint64_t p = 0; p < 64; ++p) {
    const std::size_t s = shard_of(p);
    if (pinned_per_shard[s] + 1 < 4) {  // 4 frames per shard, keep one free
      guards.push_back(pool.pin(file, p));
      pinned_per_shard[s]++;
    }
  }
  // Every shard now has exactly one evictable frame; streaming through many
  // pages must keep succeeding by cycling that single frame.
  for (std::uint64_t p = 0; p < 64; ++p) {
    auto g = pool.pin(file, p);
    EXPECT_EQ(static_cast<char>(g.data()[0]), char('a' + p % 26)) << p;
  }
  EXPECT_GT(pool.stats().evictions, 0u);
}

// -------------------------------------------------------- flush coalescing ----

TEST(FlushCoalescingTest, SequentialDirtyPagesMergeIntoOneGatherWrite) {
  CountingStore store;
  const FileId file = store.open("out.bin", true);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4});
  constexpr std::uint64_t kDirty = 16;
  for (std::uint64_t p = 0; p < kDirty; ++p) {
    auto g = pool.pin(file, p);
    std::memset(g.data().data(), '0' + static_cast<int>(p % 10), 256);
    g.mark_dirty(256);
  }
  pool.flush_all();
  // All 16 pages are adjacent and full, so they must go out as a single
  // vectored write — certainly far fewer calls than dirty pages.
  EXPECT_EQ(store.pages_written, kDirty);
  EXPECT_LT(store.write_calls + store.writev_calls, kDirty);
  EXPECT_EQ(store.write_calls + store.writev_calls, 1u);
  // The same ratio is observable from PoolStats without an instrumented
  // store: 16 pages through 1 flush backing call.
  EXPECT_EQ(pool.stats().flush_write_calls, 1u);
  EXPECT_EQ(pool.stats().flush_write_pages, kDirty);
  EXPECT_EQ(pool.stats().writebacks, kDirty);
  EXPECT_EQ(store.size(file), kDirty * 256);
  std::vector<std::byte> page(256);
  for (std::uint64_t p = 0; p < kDirty; ++p) {
    store.read(file, p * 256, page);
    EXPECT_EQ(static_cast<char>(page[0]), '0' + static_cast<int>(p % 10));
  }
}

TEST(FlushCoalescingTest, PartialPageEndsARunAndHolesSplitRuns) {
  CountingStore store;
  const FileId file = store.open("out.bin", true);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 1});
  // Pages 0..3 full, page 4 only 100 valid bytes, pages 8..9 full: two runs
  // plus nothing between 5..7.
  for (std::uint64_t p = 0; p < 5; ++p) {
    auto g = pool.pin(file, p);
    std::memset(g.data().data(), 'A', 256);
    g.mark_dirty(p == 4 ? 100 : 256);
  }
  for (std::uint64_t p = 8; p < 10; ++p) {
    auto g = pool.pin(file, p);
    std::memset(g.data().data(), 'B', 256);
    g.mark_dirty(256);
  }
  pool.flush_all();
  EXPECT_EQ(store.pages_written, 7u);
  // Run [0..4] (partial page last) + run [8..9]: two gather writes.
  EXPECT_EQ(store.write_calls + store.writev_calls, 2u);
  EXPECT_EQ(store.size(file), 10 * 256u);  // run [8..9] extends past the hole
}

TEST(FlushCoalescingTest, CoalesceLimitBoundsRunLength) {
  CountingStore store;
  const FileId file = store.open("out.bin", true);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 1,
                                          .coalesce_pages = 4});
  for (std::uint64_t p = 0; p < 16; ++p) {
    auto g = pool.pin(file, p);
    g.mark_dirty(256);
  }
  pool.flush_all();
  EXPECT_EQ(store.write_calls + store.writev_calls, 4u);  // 16 / 4
  EXPECT_EQ(pool.stats().flush_write_calls, 4u);
  EXPECT_EQ(pool.stats().flush_write_pages, 16u);
  pool.debug_validate();
}

TEST(FlushCoalescingTest, FailedFlushKeepsPagesDirtyForRetry) {
  CountingStore store;
  const FileId file = store.open("out.bin", true);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 1});
  for (std::uint64_t p = 0; p < 8; ++p) {
    auto g = pool.pin(file, p);
    std::memset(g.data().data(), 'R', 256);
    g.mark_dirty(256);
  }
  store.fail_writes = 1;
  EXPECT_THROW(pool.flush_all(), util::IoError);
  EXPECT_EQ(pool.stats().writebacks, 0u);
  pool.debug_validate();  // the failed flush released every transient hold
  // Retry must still see the pages dirty and persist them.
  pool.flush_all();
  EXPECT_EQ(pool.stats().writebacks, 8u);
  EXPECT_EQ(store.size(file), 8 * 256u);
}

TEST(FlushCoalescingTest, FailedEvictionWritebackKeepsPageResidentAndDirty) {
  CountingStore store;
  const FileId file = store.open("out.bin", true);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 2,
                                          .shards = 1});
  {
    auto g = pool.pin(file, 0);
    std::memset(g.data().data(), 'E', 256);
    g.mark_dirty(256);
  }
  pool.pin(file, 1);
  store.fail_writes = 1;
  // Allocating for page 2 must evict dirty page 0; the injected write
  // failure surfaces, but page 0's data must survive in the pool.
  EXPECT_THROW(pool.pin(file, 2), util::IoError);
  EXPECT_TRUE(pool.contains(file, 0));
  pool.debug_validate();  // failed write-back must not leak the io latch
  pool.flush_all();
  std::vector<std::byte> page(256);
  store.read(file, 0, page);
  EXPECT_EQ(static_cast<char>(page[0]), 'E');
}

TEST(FlushCoalescingTest, ConcurrentPinsDuringFlushStayCoherent) {
  util::TempDir dir;
  RealFileStore store(dir.path());
  const FileId file = store.open("data.bin", true);
  store.write(file, 0, as_bytes(std::string(64 * 256, '.')));
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4});
  // Dirty half the pages up front; page bytes are not mutated again while
  // the flusher runs (concurrent mutation of a page under write-back is
  // outside the pool's contract, like two writers on one page).
  for (std::uint64_t p = 0; p < 32; ++p) {
    auto g = pool.pin(file, p);
    g.data()[0] = static_cast<std::byte>('0' + p % 10);
    g.mark_dirty(256);
  }
  // Reader churns pins and evictions through the same shards the flusher
  // is flushing: evicting a flush-held frame must wait, not throw, and
  // every observed byte must be a value some write produced.
  std::atomic<bool> stop{false};
  std::atomic<int> bad_bytes{0};
  std::thread reader([&] {
    util::Rng rng(42);
    while (!stop.load()) {
      const std::uint64_t page = rng.uniform_u64(64);
      auto g = pool.pin(file, page);
      const char c = static_cast<char>(g.data()[0]);
      const char want = page < 32 ? char('0' + page % 10) : '.';
      if (c != want) bad_bytes++;
    }
  });
  for (int i = 0; i < 200; ++i) pool.flush_all();
  stop.store(true);
  reader.join();
  EXPECT_EQ(bad_bytes.load(), 0);
  pool.flush_all();
  std::byte b;
  for (std::uint64_t p = 0; p < 64; ++p) {
    store.read(file, p * 256, std::span<std::byte>(&b, 1));
    const char want = p < 32 ? char('0' + p % 10) : '.';
    EXPECT_EQ(static_cast<char>(b), want) << p;
  }
}

/// In-memory store whose write() can be armed to park the calling thread
/// on a latch and then fail on command — freezes an eviction write-back at
/// its most revealing moment.
class BlockingWriteStore final : public BackingStore {
 public:
  FileId open(const std::string& name, bool create) override {
    if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
    util::check<util::IoError>(create, "BlockingWriteStore: no such file");
    const auto id = static_cast<FileId>(files_.size());
    files_.emplace_back();
    by_name_.emplace(name, id);
    return id;
  }
  void close(FileId) override {}
  [[nodiscard]] std::uint64_t size(FileId id) const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return files_.at(id).size();
  }
  void truncate(FileId id, std::uint64_t n) override {
    std::lock_guard<std::mutex> lock(mutex_);
    files_.at(id).resize(n);
  }
  std::size_t read(FileId id, std::uint64_t offset,
                   std::span<std::byte> out) override {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto& data = files_.at(id);
    if (offset >= data.size()) return 0;
    const std::size_t n =
        std::min<std::size_t>(out.size(), data.size() - offset);
    std::memcpy(out.data(), data.data() + offset, n);
    return n;
  }
  void write(FileId id, std::uint64_t offset,
             std::span<const std::byte> data) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (block_next_write_) {
        block_next_write_ = false;
        write_parked_ = true;
        cv_.notify_all();
        cv_.wait(lock, [&] { return released_; });
        released_ = false;
        write_parked_ = false;
        if (fail_on_release_) {
          fail_on_release_ = false;
          throw util::IoError("BlockingWriteStore: commanded failure");
        }
      }
      auto& file = files_.at(id);
      if (offset + data.size() > file.size()) {
        file.resize(offset + data.size());
      }
      std::memcpy(file.data() + offset, data.data(), data.size());
    }
  }
  [[nodiscard]] bool exists(const std::string& name) const override {
    return by_name_.contains(name);
  }
  [[nodiscard]] FileId lookup(const std::string& name) const override {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? kInvalidFile : it->second;
  }
  void remove(const std::string& name) override { by_name_.erase(name); }

  void arm_block() {
    std::lock_guard<std::mutex> lock(mutex_);
    block_next_write_ = true;
  }
  void wait_until_parked() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return write_parked_; });
  }
  void release(bool fail) {
    std::lock_guard<std::mutex> lock(mutex_);
    fail_on_release_ = fail;
    released_ = true;
    cv_.notify_all();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool block_next_write_ = false;
  bool write_parked_ = false;
  bool released_ = false;
  bool fail_on_release_ = false;
  std::vector<std::vector<std::byte>> files_;
  std::unordered_map<std::string, FileId> by_name_;
};

TEST(FlushDurabilityTest, FlushWaitsOutInFlightEvictionAndSeesItsFailure) {
  // Regression for the durability hole the fault-injection stress harness
  // discovered (seed 1014, disk-full plan): a dirty page mid-eviction is
  // invisible to flush's dirty scan (eviction clears `dirty` and detaches
  // the frame before writing), so flush_file could return success, the
  // write-back could then fail and re-dirty the page, and a later discard
  // would drop the only copy — silent data loss behind a successful
  // flush.  flush must instead wait for the in-flight write-back and pick
  // up the page if it comes back dirty.
  BlockingWriteStore store;
  const FileId file = store.open("f", true);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 2,
                                          .shards = 1});
  {
    auto g = pool.pin(file, 0);
    std::memset(g.data().data(), 'A', 256);
    g.mark_dirty(256);
  }
  static_cast<void>(pool.pin(file, 1));  // page 0 becomes the LRU victim

  store.arm_block();
  std::atomic<bool> evictor_threw{false};
  std::thread evictor([&] {
    try {
      // Needs a frame: evicts dirty page 0, whose write-back parks in the
      // store and will be commanded to fail.
      static_cast<void>(pool.pin(file, 2));
    } catch (const util::IoError&) {
      evictor_threw = true;
    }
  });
  store.wait_until_parked();

  std::atomic<bool> flush_done{false};
  std::exception_ptr flush_error;
  std::thread flusher([&] {
    try {
      pool.flush_file(file);
    } catch (...) {
      flush_error = std::current_exception();
    }
    flush_done = true;
  });
  // The write-back is still in flight, so flush must not have concluded:
  // returning success here is exactly the bug.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(flush_done.load())
      << "flush_file returned while a dirty page's write-back was in flight";

  store.release(/*fail=*/true);
  evictor.join();
  flusher.join();
  EXPECT_TRUE(evictor_threw.load());  // the eviction surfaced the failure
  EXPECT_EQ(flush_error, nullptr);    // flush retried the page and succeeded
  // The 'A' page survived the failed write-back and was persisted by the
  // flush that observed it.
  std::vector<std::byte> page(256);
  EXPECT_EQ(store.read(file, 0, page), 256u);
  EXPECT_EQ(static_cast<char>(page[0]), 'A');
  pool.debug_validate();
}

TEST(FlushDurabilityTest, ConcurrentFlushWaitsForAPeersFailingWrite) {
  // The concurrent-flush twin of the eviction case above: flush A collects
  // a dirty page (clearing `dirty`, taking a flush_pin) and its write
  // parks; flush B on the same file must not return success while A's
  // write — which will fail and re-dirty the page — is in flight,
  // otherwise B's success claims durability the store never delivered.
  BlockingWriteStore store;
  const FileId file = store.open("f", true);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 8,
                                          .shards = 1});
  {
    auto g = pool.pin(file, 0);
    std::memset(g.data().data(), 'B', 256);
    g.mark_dirty(256);
  }
  store.arm_block();
  std::atomic<bool> first_threw{false};
  std::thread first_flush([&] {
    try {
      pool.flush_file(file);
    } catch (const util::IoError&) {
      first_threw = true;
    }
  });
  store.wait_until_parked();

  std::atomic<bool> second_done{false};
  std::exception_ptr second_error;
  std::thread second_flush([&] {
    try {
      pool.flush_file(file);
    } catch (...) {
      second_error = std::current_exception();
    }
    second_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_done.load())
      << "flush_file returned while a peer flush's write was in flight";

  store.release(/*fail=*/true);
  first_flush.join();
  second_flush.join();
  EXPECT_TRUE(first_threw.load());     // A surfaced the write failure
  EXPECT_EQ(second_error, nullptr);    // B picked the page up and succeeded
  std::vector<std::byte> page(256);
  EXPECT_EQ(store.read(file, 0, page), 256u);
  EXPECT_EQ(static_cast<char>(page[0]), 'B');
  pool.debug_validate();
}

// ---------------------------------------------------------- validation ----

TEST_F(BufferPoolTest, DebugValidatePassesAcrossLifecycle) {
  pool_.debug_validate();  // fresh pool: everything on the free list
  for (std::uint64_t p = 0; p < 8; ++p) {
    auto g = pool_.pin(file_, p);
    if (p % 2 == 0) g.mark_dirty(128);
  }
  pool_.debug_validate();  // after misses, evictions and dirty pages
  pool_.flush_all();
  pool_.debug_validate();
  pool_.discard_file(file_);
  pool_.debug_validate();  // after discard: all frames free again
}

TEST_F(BufferPoolTest, DebugValidateSeesHeldPins) {
  auto guard = pool_.pin(file_, 0);
  // A durable pin is a leak from the harness's point of view (it runs
  // after joining all workers), but legitimate while a guard is live.
  EXPECT_THROW(pool_.debug_validate(), util::IoError);
  pool_.debug_validate(/*expect_unpinned=*/false);
}

TEST_F(BufferPoolTest, EvictCleanDropsOnlyUnreferencedCleanPages) {
  auto pinned = pool_.pin(file_, 0);
  {
    auto dirty = pool_.pin(file_, 1);
    dirty.mark_dirty(256);
  }
  static_cast<void>(pool_.pin(file_, 2));  // clean, unpinned
  EXPECT_EQ(pool_.resident_pages(), 3u);
  // Unlike discard_file, evict_clean must tolerate the live pin and keep
  // the dirty page; only the clean unreferenced page may go.
  EXPECT_EQ(pool_.evict_clean(), 1u);
  EXPECT_EQ(pool_.resident_pages(), 2u);
  EXPECT_TRUE(pool_.contains(file_, 0));
  EXPECT_TRUE(pool_.contains(file_, 1));
  EXPECT_FALSE(pool_.contains(file_, 2));
  pool_.debug_validate(/*expect_unpinned=*/false);
  // After a flush everything unpinned is evictable.
  pool_.flush_all();
  EXPECT_EQ(pool_.evict_clean(), 1u);
  EXPECT_TRUE(pool_.contains(file_, 0));  // still pinned, still resident
  pinned = BufferPool::PageGuard{};  // drop the pin
  EXPECT_EQ(pool_.evict_clean(), 1u);
  EXPECT_EQ(pool_.resident_pages(), 0u);
  pool_.debug_validate();
}

TEST_F(BufferPoolTest, StressEvictionKeepsContentsCoherent) {
  // Write a distinct marker into each of 8 pages through a 4-frame pool,
  // then read everything back: LRU thrash must not lose updates.
  for (std::uint64_t p = 0; p < 8; ++p) {
    auto g = pool_.pin(file_, p);
    g.data()[0] = static_cast<std::byte>('0' + p);
    g.mark_dirty(256);
  }
  pool_.flush_all();
  for (std::uint64_t p = 0; p < 8; ++p) {
    std::byte b;
    store_.read(file_, p * 256, std::span<std::byte>(&b, 1));
    EXPECT_EQ(static_cast<char>(b), static_cast<char>('0' + p)) << p;
  }
}

}  // namespace
}  // namespace clio::io
