#include "io/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/error.hpp"
#include "util/temp_dir.hpp"

namespace clio::io {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest()
      : store_(dir_.path()),
        pool_(store_, BufferPoolConfig{.page_size = 256,
                                       .capacity_pages = 4}) {
    file_ = store_.open("data.bin", true);
    // 8 pages of recognizable content.
    std::string content;
    for (int p = 0; p < 8; ++p) content += std::string(256, char('a' + p));
    store_.write(file_, 0, as_bytes(content));
  }

  util::TempDir dir_;
  RealFileStore store_;
  BufferPool pool_;
  FileId file_ = kInvalidFile;
};

TEST_F(BufferPoolTest, RejectsSillyConfig) {
  EXPECT_THROW(BufferPool(store_, BufferPoolConfig{.page_size = 1,
                                                   .capacity_pages = 4}),
               util::ConfigError);
  EXPECT_THROW(BufferPool(store_, BufferPoolConfig{.page_size = 256,
                                                   .capacity_pages = 0}),
               util::ConfigError);
}

TEST_F(BufferPoolTest, MissThenHit) {
  {
    auto g = pool_.pin(file_, 0);
    EXPECT_EQ(static_cast<char>(g.data()[0]), 'a');
  }
  EXPECT_EQ(pool_.stats().misses, 1u);
  {
    auto g = pool_.pin(file_, 0);
    EXPECT_EQ(static_cast<char>(g.data()[10]), 'a');
  }
  EXPECT_EQ(pool_.stats().hits, 1u);
}

TEST_F(BufferPoolTest, ValidBytesReflectsFileContent) {
  auto g = pool_.pin(file_, 7);  // last full page
  EXPECT_EQ(g.valid_bytes(), 256u);
  auto past = pool_.pin(file_, 100);  // way past EOF
  EXPECT_EQ(past.valid_bytes(), 0u);
}

TEST_F(BufferPoolTest, PastEofPageIsZeroFilled) {
  auto g = pool_.pin(file_, 100);
  for (auto b : g.data()) EXPECT_EQ(b, std::byte{0});
}

TEST_F(BufferPoolTest, LruEvictsOldestUnpinned) {
  for (std::uint64_t p = 0; p < 4; ++p) pool_.pin(file_, p);
  EXPECT_EQ(pool_.resident_pages(), 4u);
  pool_.pin(file_, 4);  // must evict page 0 (least recently used)
  EXPECT_EQ(pool_.stats().evictions, 1u);
  EXPECT_FALSE(pool_.contains(file_, 0));
  EXPECT_TRUE(pool_.contains(file_, 4));
}

TEST_F(BufferPoolTest, TouchOrderAffectsEviction) {
  for (std::uint64_t p = 0; p < 4; ++p) pool_.pin(file_, p);
  pool_.pin(file_, 0);  // refresh page 0; page 1 becomes LRU
  pool_.pin(file_, 5);
  EXPECT_TRUE(pool_.contains(file_, 0));
  EXPECT_FALSE(pool_.contains(file_, 1));
}

TEST_F(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  auto guard = pool_.pin(file_, 0);
  for (std::uint64_t p = 1; p < 8; ++p) pool_.pin(file_, p);
  EXPECT_TRUE(pool_.contains(file_, 0));
}

TEST_F(BufferPoolTest, AllPinnedThrows) {
  std::vector<BufferPool::PageGuard> guards;
  for (std::uint64_t p = 0; p < 4; ++p) guards.push_back(pool_.pin(file_, p));
  EXPECT_THROW(pool_.pin(file_, 4), util::IoError);
}

TEST_F(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  {
    auto g = pool_.pin(file_, 0);
    g.data()[0] = static_cast<std::byte>('Z');
    g.mark_dirty(256);
  }
  for (std::uint64_t p = 1; p <= 4; ++p) pool_.pin(file_, p);  // evict page 0
  EXPECT_GE(pool_.stats().writebacks, 1u);
  std::byte b;
  store_.read(file_, 0, std::span<std::byte>(&b, 1));
  EXPECT_EQ(static_cast<char>(b), 'Z');
}

TEST_F(BufferPoolTest, FlushFilePersistsDirtyPages) {
  {
    auto g = pool_.pin(file_, 2);
    g.data()[5] = static_cast<std::byte>('Q');
    g.mark_dirty(256);
  }
  pool_.flush_file(file_);
  std::byte b;
  store_.read(file_, 2 * 256 + 5, std::span<std::byte>(&b, 1));
  EXPECT_EQ(static_cast<char>(b), 'Q');
}

TEST_F(BufferPoolTest, WritebackRespectsValidBytes) {
  // A fresh page past EOF written only partially must not extend the file
  // to a full page.
  const FileId small = store_.open("small.bin", true);
  {
    auto g = pool_.pin(small, 0);
    std::memcpy(g.data().data(), "hi", 2);
    g.mark_dirty(2);
  }
  pool_.flush_file(small);
  EXPECT_EQ(store_.size(small), 2u);
  store_.close(small);
}

TEST_F(BufferPoolTest, PrefetchLoadsWithoutCountingMiss) {
  EXPECT_TRUE(pool_.prefetch(file_, 3));
  EXPECT_EQ(pool_.stats().prefetches, 1u);
  EXPECT_EQ(pool_.stats().misses, 0u);
  EXPECT_FALSE(pool_.prefetch(file_, 3));  // already resident
  auto g = pool_.pin(file_, 3);
  EXPECT_EQ(pool_.stats().hits, 1u);
  EXPECT_EQ(static_cast<char>(g.data()[0]), 'd');
}

TEST_F(BufferPoolTest, DiscardDropsWithoutWriteback) {
  {
    auto g = pool_.pin(file_, 1);
    g.data()[0] = static_cast<std::byte>('X');
    g.mark_dirty(256);
  }
  pool_.discard_file(file_);
  EXPECT_EQ(pool_.resident_pages(), 0u);
  EXPECT_EQ(pool_.stats().writebacks, 0u);
  std::byte b;
  store_.read(file_, 256, std::span<std::byte>(&b, 1));
  EXPECT_EQ(static_cast<char>(b), 'b');  // original content intact
}

TEST_F(BufferPoolTest, MarkDirtyBeyondPageThrows) {
  auto g = pool_.pin(file_, 0);
  EXPECT_THROW(g.mark_dirty(257), util::IoError);
}

TEST_F(BufferPoolTest, MovedFromGuardIsEmpty) {
  auto a = pool_.pin(file_, 0);
  auto b = std::move(a);
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(b.empty());
  EXPECT_THROW(a.data(), util::IoError);
}

TEST_F(BufferPoolTest, GuardsFromTwoFilesAreIndependent) {
  const FileId other = store_.open("other.bin", true);
  store_.write(other, 0, as_bytes(std::string(256, 'z')));
  auto g1 = pool_.pin(file_, 0);
  auto g2 = pool_.pin(other, 0);
  EXPECT_EQ(static_cast<char>(g1.data()[0]), 'a');
  EXPECT_EQ(static_cast<char>(g2.data()[0]), 'z');
  store_.close(other);
}

TEST_F(BufferPoolTest, StressEvictionKeepsContentsCoherent) {
  // Write a distinct marker into each of 8 pages through a 4-frame pool,
  // then read everything back: LRU thrash must not lose updates.
  for (std::uint64_t p = 0; p < 8; ++p) {
    auto g = pool_.pin(file_, p);
    g.data()[0] = static_cast<std::byte>('0' + p);
    g.mark_dirty(256);
  }
  pool_.flush_all();
  for (std::uint64_t p = 0; p < 8; ++p) {
    std::byte b;
    store_.read(file_, p * 256, std::span<std::byte>(&b, 1));
    EXPECT_EQ(static_cast<char>(b), static_cast<char>('0' + p)) << p;
  }
}

}  // namespace
}  // namespace clio::io
