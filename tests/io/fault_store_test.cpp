// Unit coverage for the FaultStore decorator: determinism, exact-call
// targeting, tear semantics (short reads, torn writes, granularity,
// disk-full), and aiming faults at specific buffer-pool code paths
// (coalesced flush gathers, prefetch readv runs, eviction write-backs).
#include "io/fault_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "io/buffer_pool.hpp"
#include "io/file_store.hpp"
#include "util/error.hpp"

namespace clio::io {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

std::string read_all(BackingStore& store, FileId id) {
  std::vector<std::byte> buf(store.size(id));
  static_cast<void>(store.read(id, 0, buf));
  return std::string(reinterpret_cast<const char*>(buf.data()), buf.size());
}

TEST(FaultStore, ForwardsVerbatimWithEmptyPlan) {
  SimFileStore inner(2, 64 * 1024);
  FaultStore store(inner);
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("hello"));
  std::vector<std::byte> buf(5);
  EXPECT_EQ(store.read(id, 0, buf), 5u);
  EXPECT_EQ(store.size(id), 5u);
  EXPECT_TRUE(store.exists("f"));
  EXPECT_EQ(store.lookup("f"), id);
  const FaultStats stats = store.stats();
  EXPECT_EQ(stats.total_faults(), 0u);
  EXPECT_EQ(stats.calls[static_cast<std::size_t>(FaultOp::kRead)], 1u);
  EXPECT_EQ(stats.calls[static_cast<std::size_t>(FaultOp::kWrite)], 1u);
  store.close(id);
}

TEST(FaultStore, DisarmedStoreCountsAndInjectsNothing) {
  SimFileStore inner(2, 64 * 1024);
  FaultPlan plan;
  plan.fail_prob = {1.0, 1.0, 1.0, 1.0};
  FaultStore store(inner, plan);
  store.arm(false);
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("safe"));
  std::vector<std::byte> buf(4);
  EXPECT_EQ(store.read(id, 0, buf), 4u);
  EXPECT_EQ(store.stats().total_calls(), 0u);
  EXPECT_EQ(store.stats().total_faults(), 0u);
  store.arm(true);
  EXPECT_THROW(store.write(id, 0, as_bytes("boom")), util::IoError);
}

TEST(FaultStore, FailNthTargetsTheExactCall) {
  SimFileStore inner(2, 64 * 1024);
  FaultPlan plan;
  plan.fail_nth[static_cast<std::size_t>(FaultOp::kRead)] = 3;
  FaultStore store(inner, plan);
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abcdef"));
  std::vector<std::byte> buf(6);
  EXPECT_EQ(store.read(id, 0, buf), 6u);  // call 1
  EXPECT_EQ(store.read(id, 0, buf), 6u);  // call 2
  EXPECT_THROW(store.read(id, 0, buf), util::IoError);  // call 3
  EXPECT_EQ(store.read(id, 0, buf), 6u);  // call 4: one-shot trigger
  EXPECT_EQ(store.stats().faults[static_cast<std::size_t>(FaultOp::kRead)],
            1u);
}

TEST(FaultStore, FailNextForcesTheNextCalls) {
  SimFileStore inner(2, 64 * 1024);
  FaultStore store(inner);
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("abc"));
  store.fail_next(FaultOp::kWrite, 2);
  EXPECT_THROW(store.write(id, 0, as_bytes("x")), util::IoError);
  EXPECT_THROW(store.write(id, 0, as_bytes("y")), util::IoError);
  store.write(id, 0, as_bytes("z"));  // latch exhausted
  EXPECT_EQ(read_all(store, id)[0], 'z');
  // The failed writes never reached the inner store.
  EXPECT_EQ(read_all(store, id).substr(1), "bc");
}

TEST(FaultStore, SameSeedReplaysTheSameFaultSequence) {
  const auto trace_of = [](std::uint64_t seed) {
    SimFileStore inner(2, 64 * 1024);
    FaultPlan plan;
    plan.seed = seed;
    plan.fail_prob[static_cast<std::size_t>(FaultOp::kRead)] = 0.5;
    FaultStore store(inner, plan);
    const FileId id = store.open("f", true);
    store.arm(false);
    store.write(id, 0, as_bytes("data"));
    store.arm(true);
    std::vector<std::byte> buf(4);
    std::string trace;
    for (int i = 0; i < 64; ++i) {
      try {
        static_cast<void>(store.read(id, 0, buf));
        trace += '.';
      } catch (const util::IoError&) {
        trace += 'X';
      }
    }
    return trace;
  };
  EXPECT_EQ(trace_of(42), trace_of(42));
  EXPECT_NE(trace_of(42), trace_of(43));  // astronomically unlikely to match
  EXPECT_NE(trace_of(42).find('X'), std::string::npos);
  EXPECT_NE(trace_of(42).find('.'), std::string::npos);
}

TEST(FaultStore, ShortReadFillsAPrefixThenThrows) {
  SimFileStore inner(2, 64 * 1024);
  FaultPlan plan;
  plan.short_read_prob = 1.0;
  FaultStore store(inner, plan);
  const FileId id = store.open("f", true);
  store.arm(false);
  store.write(id, 0, as_bytes("0123456789"));
  store.arm(true);
  std::vector<std::byte> buf(10, std::byte{'?'});
  EXPECT_THROW(static_cast<void>(store.read(id, 0, buf)), util::IoError);
  EXPECT_EQ(store.stats().short_reads, 1u);
  // Whatever prefix was filled matches the file; the tail is untouched.
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const char c = static_cast<char>(buf[i]);
    EXPECT_TRUE(c == static_cast<char>('0' + i) || c == '?') << i;
  }
}

TEST(FaultStore, TornWritePersistsAGranularityAlignedPrefix) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    SimFileStore inner(2, 64 * 1024);
    FaultPlan plan;
    plan.seed = 100 + static_cast<std::uint64_t>(attempt);
    plan.torn_write_prob = 1.0;
    plan.torn_granularity = 4;
    FaultStore store(inner, plan);
    const FileId id = store.open("f", true);
    EXPECT_THROW(store.write(id, 0, as_bytes("abcdefghij")), util::IoError);
    EXPECT_EQ(store.stats().torn_writes, 1u);
    const std::uint64_t persisted = inner.size(id);
    EXPECT_EQ(persisted % 4, 0u) << "tear not granularity-aligned";
    EXPECT_LT(persisted, 10u);
    EXPECT_EQ(read_all(inner, id),
              std::string("abcdefghij").substr(0, persisted));
  }
}

TEST(FaultStore, TornWritevTearsBetweenPageSizedParts) {
  SimFileStore inner(2, 64 * 1024);
  FaultPlan plan;
  plan.torn_write_prob = 1.0;
  plan.torn_granularity = 4;  // one "page"
  FaultStore store(inner, plan);
  const FileId id = store.open("f", true);
  const std::string a(4, 'A'), b(4, 'B'), c(4, 'C');
  std::vector<std::span<const std::byte>> parts{as_bytes(a), as_bytes(b),
                                                as_bytes(c)};
  EXPECT_THROW(store.writev(id, 0, parts), util::IoError);
  // A whole number of leading parts landed; no part was split.
  const std::uint64_t persisted = inner.size(id);
  EXPECT_EQ(persisted % 4, 0u);
  EXPECT_LT(persisted, 12u);
  const std::string got = read_all(inner, id);
  EXPECT_EQ(got, std::string("AAAABBBBCCCC").substr(0, persisted));
}

TEST(FaultStore, DiskFullTearsAtTheBudgetThenRefusesWrites) {
  SimFileStore inner(2, 64 * 1024);
  FaultPlan plan;
  plan.disk_full_after_bytes = 8;
  FaultStore store(inner, plan);
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("123456"));  // 6 of 8 bytes used
  EXPECT_THROW(store.write(id, 6, as_bytes("789abc")), util::IoError);
  EXPECT_EQ(store.stats().disk_full_faults, 1u);
  // The failing write landed exactly up to the budget boundary.
  EXPECT_EQ(read_all(inner, id), "12345678");
  // The budget is spent: even a 1-byte write now fails cleanly.
  EXPECT_THROW(store.write(id, 0, as_bytes("x")), util::IoError);
  EXPECT_EQ(read_all(inner, id), "12345678");
  // reset() restores the budget.
  store.reset();
  store.write(id, 0, as_bytes("xx"));
  EXPECT_EQ(read_all(inner, id).substr(0, 2), "xx");
}

TEST(FaultStore, LatencyInjectionIsCountedAndHarmless) {
  SimFileStore inner(2, 64 * 1024);
  FaultPlan plan;
  plan.latency_prob = 1.0;
  plan.latency_us = 1;
  FaultStore store(inner, plan);
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("slow"));
  std::vector<std::byte> buf(4);
  EXPECT_EQ(store.read(id, 0, buf), 4u);
  EXPECT_EQ(store.stats().latency_injections, 2u);
  EXPECT_EQ(store.stats().total_faults(), 0u);  // latency is not a failure
}

TEST(FaultStore, OwningConstructorManagesTheInnerStore) {
  FaultStore store(std::make_unique<SimFileStore>(2, 64 * 1024));
  const FileId id = store.open("f", true);
  store.write(id, 0, as_bytes("owned"));
  std::vector<std::byte> buf(5);
  EXPECT_EQ(store.read(id, 0, buf), 5u);
  store.close(id);
}

// ------------------------------------------------- aiming at pool paths ----

TEST(FaultStoreAiming, FailNthWritevHitsTheCoalescedFlushGather) {
  SimFileStore inner(2, 64 * 1024);
  FaultPlan plan;
  plan.fail_nth[static_cast<std::size_t>(FaultOp::kWritev)] = 1;
  FaultStore store(inner, plan);
  const FileId id = store.open("f", true);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 1});
  for (std::uint64_t p = 0; p < 8; ++p) {
    auto g = pool.pin(id, p);
    std::memset(g.data().data(), 'F', 256);
    g.mark_dirty(256);
  }
  // The flush's one writev gather is exactly the first writev call.
  EXPECT_THROW(pool.flush_all(), util::IoError);
  pool.debug_validate();
  // Nothing was lost: the retry persists all 8 pages.
  pool.flush_all();
  EXPECT_EQ(inner.size(id), 8 * 256u);
  pool.debug_validate();
}

TEST(FaultStoreAiming, FailNthReadvHitsThePrefetchGather) {
  SimFileStore inner(2, 64 * 1024);
  FaultPlan plan;
  plan.fail_nth[static_cast<std::size_t>(FaultOp::kReadv)] = 1;
  FaultStore store(inner, plan);
  const FileId id = store.open("f", true);
  store.arm(false);
  std::vector<std::byte> content(16 * 256, std::byte{'P'});
  store.write(id, 0, content);
  store.arm(true);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 32,
                                          .shards = 4});
  EXPECT_THROW(static_cast<void>(pool.prefetch_range(id, 0, 8)),
               util::IoError);
  EXPECT_EQ(pool.resident_pages(), 0u);  // failed gather fully unwound
  pool.debug_validate();
  EXPECT_EQ(pool.prefetch_range(id, 0, 8), 8u);  // retry loads clean
  pool.debug_validate();
}

TEST(FaultStoreAiming, TornEvictionWritebackKeepsThePageDirty) {
  SimFileStore inner(2, 64 * 1024);
  FaultPlan plan;
  plan.fail_nth[static_cast<std::size_t>(FaultOp::kWrite)] = 1;
  FaultStore store(inner, plan);
  const FileId id = store.open("f", true);
  BufferPool pool(store, BufferPoolConfig{.page_size = 256,
                                          .capacity_pages = 2,
                                          .shards = 1});
  {
    auto g = pool.pin(id, 0);
    std::memset(g.data().data(), 'D', 256);
    g.mark_dirty(256);
  }
  static_cast<void>(pool.pin(id, 1));
  // Faulting page 2 evicts dirty page 0; its write-back hits the fault.
  EXPECT_THROW(static_cast<void>(pool.pin(id, 2)), util::IoError);
  EXPECT_TRUE(pool.contains(id, 0));
  pool.debug_validate();
  pool.flush_all();
  std::vector<std::byte> b(1);
  static_cast<void>(inner.read(id, 0, b));
  EXPECT_EQ(static_cast<char>(b[0]), 'D');
  pool.debug_validate();
}

}  // namespace
}  // namespace clio::io
