#include "io/io_stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace clio::io {
namespace {

TEST(IoStats, OpNamesMatchTraceEncoding) {
  EXPECT_EQ(io_op_name(IoOp::kOpen), "open");
  EXPECT_EQ(io_op_name(IoOp::kClose), "close");
  EXPECT_EQ(io_op_name(IoOp::kRead), "read");
  EXPECT_EQ(io_op_name(IoOp::kWrite), "write");
  EXPECT_EQ(io_op_name(IoOp::kSeek), "seek");
  EXPECT_EQ(static_cast<int>(IoOp::kOpen), 0);
  EXPECT_EQ(static_cast<int>(IoOp::kClose), 1);
  EXPECT_EQ(static_cast<int>(IoOp::kRead), 2);
  EXPECT_EQ(static_cast<int>(IoOp::kWrite), 3);
  EXPECT_EQ(static_cast<int>(IoOp::kSeek), 4);
  // The vectored classes extend the enum past the trace set; traces may
  // only carry ops below kIoTraceOpCount.
  EXPECT_EQ(io_op_name(IoOp::kReadv), "readv");
  EXPECT_EQ(io_op_name(IoOp::kWritev), "writev");
  EXPECT_EQ(static_cast<int>(IoOp::kReadv), 5);
  EXPECT_EQ(static_cast<int>(IoOp::kWritev), 6);
  EXPECT_EQ(kIoTraceOpCount, 5u);
  EXPECT_EQ(kIoOpCount, 7u);
}

TEST(IoStats, VectoredOpsRecordCallsAndBytes) {
  IoStats stats;
  stats.record(IoOp::kReadv, 16 * 4096, 2.0);
  stats.record(IoOp::kReadv, 4 * 4096, 1.0);
  stats.record(IoOp::kWritev, 64 * 4096, 3.0);
  EXPECT_EQ(stats.op_stats(IoOp::kReadv).count(), 2u);
  EXPECT_EQ(stats.op_bytes(IoOp::kReadv), 20 * 4096u);
  EXPECT_EQ(stats.op_stats(IoOp::kWritev).count(), 1u);
  EXPECT_EQ(stats.op_bytes(IoOp::kWritev), 64 * 4096u);
  // The coalescing ratio falls straight out of the two numbers.
  EXPECT_DOUBLE_EQ(static_cast<double>(stats.op_bytes(IoOp::kWritev)) /
                       (stats.op_stats(IoOp::kWritev).count() * 4096.0),
                   64.0);
  // Backing-level vectored bytes do not double into the user-level total
  // (which sums managed kRead + kWrite only).
  EXPECT_EQ(stats.total_bytes(), 0u);
}

TEST(IoStats, RecordsPerOpClass) {
  IoStats stats;
  stats.record(IoOp::kRead, 100, 1.5);
  stats.record(IoOp::kRead, 200, 2.5);
  stats.record(IoOp::kWrite, 50, 0.5);
  EXPECT_EQ(stats.op_stats(IoOp::kRead).count(), 2u);
  EXPECT_DOUBLE_EQ(stats.op_stats(IoOp::kRead).mean(), 2.0);
  EXPECT_EQ(stats.op_stats(IoOp::kWrite).count(), 1u);
  EXPECT_EQ(stats.op_stats(IoOp::kOpen).count(), 0u);
}

TEST(IoStats, TotalsAggregateAcrossOps) {
  IoStats stats;
  stats.record(IoOp::kOpen, 0, 0.1);
  stats.record(IoOp::kRead, 100, 1.0);
  stats.record(IoOp::kWrite, 300, 2.0);
  stats.record(IoOp::kSeek, 12345, 0.2);  // seek bytes = offset, not payload
  EXPECT_DOUBLE_EQ(stats.total_ms(), 3.3);
  EXPECT_EQ(stats.total_bytes(), 400u);  // read + write only
}

TEST(IoStats, RecordsKeptOnlyWhenRequested) {
  IoStats quiet(false);
  quiet.record(IoOp::kRead, 1, 1.0);
  EXPECT_TRUE(quiet.records().empty());
  EXPECT_FALSE(quiet.keeps_records());

  IoStats verbose(true);
  verbose.record(IoOp::kRead, 1, 1.0);
  verbose.record(IoOp::kSeek, 2, 0.5);
  ASSERT_EQ(verbose.records().size(), 2u);
  EXPECT_EQ(verbose.records()[0].op, IoOp::kRead);
  EXPECT_EQ(verbose.records()[1].op, IoOp::kSeek);
  EXPECT_DOUBLE_EQ(verbose.records()[1].ms, 0.5);
}

TEST(IoStats, HistogramTracksOps) {
  IoStats stats;
  stats.record(IoOp::kRead, 1, 1.0);  // 1 ms = 1e6 ns
  EXPECT_EQ(stats.op_histogram(IoOp::kRead).count(), 1u);
  EXPECT_EQ(stats.op_histogram(IoOp::kWrite).count(), 0u);
}

TEST(IoStats, ResetClearsEverything) {
  IoStats stats(true);
  stats.record(IoOp::kClose, 0, 9.0);
  stats.reset();
  EXPECT_EQ(stats.op_stats(IoOp::kClose).count(), 0u);
  EXPECT_TRUE(stats.records().empty());
  EXPECT_DOUBLE_EQ(stats.total_ms(), 0.0);
}

TEST(IoStats, RenderListsOnlyUsedOps) {
  IoStats stats;
  stats.record(IoOp::kRead, 64, 0.5);
  std::ostringstream oss;
  stats.render(oss);
  EXPECT_NE(oss.str().find("read"), std::string::npos);
  EXPECT_EQ(oss.str().find("write"), std::string::npos);
}

}  // namespace
}  // namespace clio::io
