#include "sim/real_driver.hpp"

#include <gtest/gtest.h>

#include "model/qcrd.hpp"
#include "util/error.hpp"
#include "util/temp_dir.hpp"

namespace clio::sim {
namespace {

/// Uncalibrated fixed rates keep the test workload tiny and deterministic.
RealDriverOptions fast_options(const util::TempDir& dir) {
  RealDriverOptions options;
  options.workdir = dir.path() / "driver";
  options.calibrate = false;
  options.rates.disk_mb_s = 400.0;    // 0.1 s of I/O -> 40 MB
  options.rates.network_mb_s = 400.0;
  options.pool_pages = 256;           // 1 MiB pool
  options.io_block = 64 * 1024;
  return options;
}

TEST(RealDriver, RequiresWorkdir) {
  RealDriverOptions options;
  EXPECT_THROW(RealExecutionDriver{options}, util::ConfigError);
}

TEST(RealDriver, QcrdRunMeasuresBothPrograms) {
  util::TempDir dir;
  RealExecutionDriver driver(fast_options(dir));
  const auto result = driver.run(model::make_qcrd(), /*timebase=*/0.05);
  ASSERT_EQ(result.programs.size(), 2u);
  EXPECT_EQ(result.programs[0].name, "Program1");
  EXPECT_EQ(result.programs[1].name, "Program2");
  for (const auto& p : result.programs) {
    EXPECT_GT(p.cpu_ms, 0.0);
    EXPECT_GT(p.io_ms, 0.0);
    EXPECT_GT(p.io_bytes, 0u);
    EXPECT_DOUBLE_EQ(p.comm_ms, 0.0);  // QCRD: no communication
  }
  EXPECT_GE(result.wall_ms,
            result.total_cpu_ms());  // wall covers at least the spin time
}

TEST(RealDriver, CpuTimeTracksModelPrediction) {
  util::TempDir dir;
  RealExecutionDriver driver(fast_options(dir));
  const double timebase = 0.05;
  const auto app = model::make_qcrd();
  const auto result = driver.run(app, timebase);
  const auto reqs = app.per_program_requirements(timebase);
  // Spinning is accurate; allow generous scheduler slop upward.
  EXPECT_GE(result.programs[0].cpu_ms, reqs[0].cpu * 1e3 * 0.95);
  EXPECT_LT(result.programs[0].cpu_ms, reqs[0].cpu * 1e3 * 3.0);
}

TEST(RealDriver, Program2MoreIoBoundThanProgram1) {
  util::TempDir dir;
  RealExecutionDriver driver(fast_options(dir));
  const auto result = driver.run(model::make_qcrd(), 0.05);
  const auto& p1 = result.programs[0];
  const auto& p2 = result.programs[1];
  EXPECT_GT(p2.io_ms / p2.total_ms(), p1.io_ms / p1.total_ms());
}

TEST(RealDriver, CommunicationBurstsExecute) {
  util::TempDir dir;
  RealExecutionDriver driver(fast_options(dir));
  // A program with a communication-heavy working set.
  model::ProgramBehavior program(
      "Chatty", {model::WorkingSet{0.0, 0.8, 1.0, 1}});
  model::ApplicationBehavior app("CommApp", {program});
  const auto result = driver.run(app, 0.02);
  EXPECT_GT(result.programs[0].comm_ms, 0.0);
  EXPECT_GT(result.programs[0].comm_bytes, 0u);
}

TEST(RealDriver, CalibrationFillsRates) {
  util::TempDir dir;
  auto options = fast_options(dir);
  options.calibrate = true;
  options.calib_io_bytes = 2ULL << 20;   // keep the test quick
  options.calib_comm_bytes = 1ULL << 20;
  RealExecutionDriver driver(options);
  model::ProgramBehavior tiny("Tiny", {model::WorkingSet{0.5, 0.0, 1.0, 1}});
  const auto result =
      driver.run(model::ApplicationBehavior("T", {tiny}), 0.01);
  EXPECT_GT(result.disk_mb_s, 0.0);
  EXPECT_GT(result.net_mb_s, 0.0);
}

TEST(RealDriver, WorkdirIsReusableAcrossRuns) {
  util::TempDir dir;
  RealExecutionDriver driver(fast_options(dir));
  model::ProgramBehavior tiny("Tiny", {model::WorkingSet{0.5, 0.0, 1.0, 1}});
  const model::ApplicationBehavior app("T", {tiny});
  EXPECT_NO_THROW(driver.run(app, 0.01));
  EXPECT_NO_THROW(driver.run(app, 0.01));
}

}  // namespace
}  // namespace clio::sim
