#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace clio::sim {
namespace {

TEST(EventQueue, StartsAtTimeZero) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now_ms(), 0.0);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5.0, [&] { order.push_back(2); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(9.0, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now_ms(), 9.0);
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, TiesBreakInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(2.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.schedule_at(2.0, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(10.0, [&] {
    q.schedule_in(2.5, [&] { fired_at = q.now_ms(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 12.5);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_in(1.0, recurse);
  };
  q.schedule_in(1.0, recurse);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now_ms(), 5.0);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule_at(1.0, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(4.0, [] {}), util::ConfigError);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), util::ConfigError);
}

}  // namespace
}  // namespace clio::sim
