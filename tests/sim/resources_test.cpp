#include "sim/resources.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace clio::sim {
namespace {

TEST(ResourcePool, RejectsZeroServers) {
  EventQueue q;
  EXPECT_THROW(ResourcePool(q, 0), util::ConfigError);
}

TEST(ResourcePool, SingleServerSerializes) {
  EventQueue q;
  ResourcePool pool(q, 1);
  std::vector<double> finishes;
  for (int i = 0; i < 3; ++i) {
    pool.submit(10.0, [&] { finishes.push_back(q.now_ms()); });
  }
  q.run();
  EXPECT_EQ(finishes, (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_DOUBLE_EQ(pool.busy_ms(), 30.0);
  EXPECT_EQ(pool.completed(), 3u);
}

TEST(ResourcePool, TwoServersOverlap) {
  EventQueue q;
  ResourcePool pool(q, 2);
  std::vector<double> finishes;
  for (int i = 0; i < 4; ++i) {
    pool.submit(10.0, [&] { finishes.push_back(q.now_ms()); });
  }
  q.run();
  // Jobs 1,2 run together finishing at 10; jobs 3,4 finish at 20.
  EXPECT_EQ(finishes, (std::vector<double>{10.0, 10.0, 20.0, 20.0}));
}

TEST(ResourcePool, ZeroServiceCompletesImmediately) {
  EventQueue q;
  ResourcePool pool(q, 1);
  bool done = false;
  pool.submit(0.0, [&] { done = true; });
  q.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(q.now_ms(), 0.0);
}

TEST(ResourcePool, RejectsNegativeService) {
  EventQueue q;
  ResourcePool pool(q, 1);
  EXPECT_THROW(pool.submit(-1.0, [] {}), util::ConfigError);
}

TEST(DiskQueue, RequestsSerializeWithSeekCosts) {
  EventQueue q;
  DiskQueue disk(q, io::DiskParams{});
  int completed = 0;
  disk.submit(0, 4096, [&] { ++completed; });
  disk.submit(1ULL << 30, 4096, [&] { ++completed; });  // long seek away
  q.run();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(disk.requests(), 2u);
  EXPECT_EQ(disk.bytes(), 8192u);
  EXPECT_GT(disk.busy_ms(), 0.0);
  EXPECT_DOUBLE_EQ(q.now_ms(), disk.busy_ms());  // no idle gaps
}

TEST(StripedDisk, SingleStripeRequestUsesOneDisk) {
  EventQueue q;
  StripedDiskResource disks(q, 4, 64 * 1024);
  bool done = false;
  disks.submit(0, 4096, [&] { done = true; });
  q.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(disks.disk(0).requests(), 1u);
  EXPECT_EQ(disks.disk(1).requests(), 0u);
}

TEST(StripedDisk, WideRequestFansOutAndJoins) {
  EventQueue q;
  StripedDiskResource disks(q, 4, 64 * 1024);
  double finish = -1.0;
  disks.submit(0, 256 * 1024, [&] { finish = q.now_ms(); });
  q.run();
  EXPECT_GT(finish, 0.0);
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(disks.disk(d).requests(), 1u) << d;
  }
  // Completion is the max of per-disk times, not the sum: well under the
  // serial cost of 4 extents.
  EXPECT_LT(finish, disks.total_busy_ms());
}

TEST(StripedDisk, CallbackCountMatchesSubmissions) {
  EventQueue q;
  StripedDiskResource disks(q, 2, 4096);
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    disks.submit(static_cast<std::uint64_t>(i) * 8192, 8192,
                 [&] { ++done; });
  }
  q.run();
  EXPECT_EQ(done, 10);
}

TEST(NetworkLink, MessagesSerializeOnTheLink) {
  EventQueue q;
  NetworkLink link(q, 100.0, 1.0);  // 100 MB/s, 1 ms latency
  std::vector<double> finishes;
  link.submit(1'000'000, [&] { finishes.push_back(q.now_ms()); });  // 10+1 ms
  link.submit(1'000'000, [&] { finishes.push_back(q.now_ms()); });
  q.run();
  ASSERT_EQ(finishes.size(), 2u);
  EXPECT_NEAR(finishes[0], 11.0, 1e-9);
  EXPECT_NEAR(finishes[1], 22.0, 1e-9);
  EXPECT_EQ(link.messages(), 2u);
}

TEST(NetworkLink, RejectsBadParams) {
  EventQueue q;
  EXPECT_THROW(NetworkLink(q, 0.0, 1.0), util::ConfigError);
  EXPECT_THROW(NetworkLink(q, 10.0, -1.0), util::ConfigError);
}

}  // namespace
}  // namespace clio::sim
