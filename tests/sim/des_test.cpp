#include "sim/des.hpp"

#include <gtest/gtest.h>

#include "model/qcrd.hpp"
#include "sim/speedup.hpp"
#include "util/error.hpp"

namespace clio::sim {
namespace {

MachineConfig base_machine() {
  MachineConfig m;
  m.cpus = 2;
  m.disks = 1;
  return m;
}

TEST(Des, RejectsBadTimebase) {
  EXPECT_THROW(simulate(model::make_qcrd(), base_machine(), 0.0),
               util::ConfigError);
}

TEST(Des, QcrdProducesBothProgramResults) {
  const auto result = simulate(model::make_qcrd(), base_machine(), 1.0);
  ASSERT_EQ(result.programs.size(), 2u);
  EXPECT_EQ(result.programs[0].name, "Program1");
  EXPECT_EQ(result.programs[1].name, "Program2");
  for (const auto& p : result.programs) {
    EXPECT_GT(p.cpu_ms, 0.0);
    EXPECT_GT(p.io_ms, 0.0);
    EXPECT_DOUBLE_EQ(p.comm_ms, 0.0);  // QCRD has no communication
    EXPECT_GT(p.finish_ms, 0.0);
    EXPECT_LE(p.total_ms(), p.finish_ms + 1e-9);
  }
  EXPECT_GT(result.makespan_ms, 0.0);
  EXPECT_GT(result.cpu_busy_ms, 0.0);
  EXPECT_GT(result.disk_busy_ms, 0.0);
}

TEST(Des, Program1DominatesMakespan) {
  // Paper: "the speedup is dominated by the first program ... the first
  // program runs longer than the second program."
  const auto result = simulate(model::make_qcrd(), base_machine(), 1.0);
  EXPECT_GT(result.programs[0].finish_ms, result.programs[1].finish_ms);
  EXPECT_DOUBLE_EQ(result.makespan_ms, result.programs[0].finish_ms);
}

TEST(Des, Program2IsMoreIoIntensive) {
  const auto result = simulate(model::make_qcrd(), base_machine(), 1.0);
  const auto& p1 = result.programs[0];
  const auto& p2 = result.programs[1];
  EXPECT_GT(p2.io_ms / p2.total_ms(), p1.io_ms / p1.total_ms());
  EXPECT_GT(p1.cpu_ms, p1.io_ms);  // program 1 is CPU-bound
  EXPECT_GT(p2.io_ms, p2.cpu_ms);  // program 2 is I/O-bound
}

TEST(Des, MakespanScalesWithTimebase) {
  const auto small = simulate(model::make_qcrd(), base_machine(), 0.5);
  const auto large = simulate(model::make_qcrd(), base_machine(), 2.0);
  EXPECT_GT(large.makespan_ms, small.makespan_ms * 2.0);
}

TEST(Des, MoreDisksNeverSlowDown) {
  auto machine = base_machine();
  const auto d1 = simulate(model::make_qcrd(), machine, 1.0);
  machine.disks = 8;
  const auto d8 = simulate(model::make_qcrd(), machine, 1.0);
  EXPECT_LE(d8.makespan_ms, d1.makespan_ms * 1.001);
}

TEST(Des, DataParallelCpuShrinksCpuTime) {
  auto machine = base_machine();
  machine.cpus = 8;
  machine.data_parallel_cpu = false;
  const auto serial = simulate(model::make_qcrd(), machine, 1.0);
  machine.data_parallel_cpu = true;
  const auto parallel = simulate(model::make_qcrd(), machine, 1.0);
  EXPECT_LT(parallel.programs[0].cpu_ms, serial.programs[0].cpu_ms / 4.0);
  EXPECT_LT(parallel.makespan_ms, serial.makespan_ms);
}

TEST(Des, SingleCpuCreatesContention) {
  // Two programs on one CPU: queueing delay stretches the makespan
  // relative to one CPU per program.
  auto machine = base_machine();
  machine.cpus = 1;
  const auto contended = simulate(model::make_qcrd(), machine, 1.0);
  machine.cpus = 2;
  const auto free = simulate(model::make_qcrd(), machine, 1.0);
  EXPECT_GT(contended.makespan_ms, free.makespan_ms);
}

// --- speedup sweeps: the Figure 4 / Figure 5 shapes ----------------------

TEST(Speedup, DiskSweepIsNearlyFlat) {
  const auto points = sweep_disks(model::make_qcrd(), base_machine(),
                                  {2, 4, 8, 16, 32}, 1.0);
  ASSERT_EQ(points.size(), 5u);
  for (const auto& p : points) {
    EXPECT_GE(p.speedup, 0.95) << p.value;
    EXPECT_LE(p.speedup, 2.0) << p.value;  // "changes slightly"
  }
  // Flat: the whole sweep spans a narrow band (the paper's bars wobble
  // within ~0.3 of each other without a strict trend).
  double lo = points[0].speedup;
  double hi = points[0].speedup;
  for (const auto& p : points) {
    lo = std::min(lo, p.speedup);
    hi = std::max(hi, p.speedup);
  }
  EXPECT_LT(hi - lo, 0.5);
}

TEST(Speedup, CpuSweepRisesThenSaturates) {
  const auto points = sweep_cpus(model::make_qcrd(), base_machine(),
                                 {2, 4, 8, 16, 32}, 1.0);
  ASSERT_EQ(points.size(), 5u);
  // Rising...
  EXPECT_GT(points[1].speedup, points[0].speedup);
  EXPECT_GT(points.back().speedup, points.front().speedup);
  // ...but saturating: the gain from 16 to 32 CPUs is small.
  const double tail_gain = points[4].speedup - points[3].speedup;
  const double head_gain = points[1].speedup - points[0].speedup;
  EXPECT_LT(tail_gain, head_gain);
  // Amdahl ceiling from the I/O-serial fraction keeps it modest.
  EXPECT_LT(points.back().speedup, 4.0);
  EXPECT_GT(points.back().speedup, 1.5);
}

TEST(Speedup, CpuSpeedupExceedsDiskSpeedupForQcrd) {
  // Paper: "it is expected to efficiently improve the performance of QCRD
  // by increasing the number of CPUs" (vs. disks, which barely help).
  const auto disks = sweep_disks(model::make_qcrd(), base_machine(),
                                 {32}, 1.0);
  const auto cpus = sweep_cpus(model::make_qcrd(), base_machine(),
                               {32}, 1.0);
  EXPECT_GT(cpus[0].speedup, disks[0].speedup);
}

TEST(Speedup, EmptySweepRejected) {
  EXPECT_THROW(sweep_disks(model::make_qcrd(), base_machine(), {}, 1.0),
               util::ConfigError);
  EXPECT_THROW(sweep_cpus(model::make_qcrd(), base_machine(), {}, 1.0),
               util::ConfigError);
}

}  // namespace
}  // namespace clio::sim
